package bench

import (
	"fmt"
	"math/rand"
	"time"

	"kylix/internal/apps/pagerank"
	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/mapreduce"
	"kylix/internal/memnet"
	"kylix/internal/netsim"
	"kylix/internal/powerlaw"
	"kylix/internal/topo"
	"kylix/internal/trace"
)

// pagerankDataset is one synthetic graph profile for the system
// comparison.
type pagerankDataset struct {
	name  string
	n     int64
	edges []graph.Edge
	parts [][]graph.Edge
}

// genPagerankDatasets builds the Twitter-like (denser) and Yahoo-like
// (sparser, more vertices) graphs at the experiment scale.
func genPagerankDatasets(sc Scale) []pagerankDataset {
	rng := rand.New(rand.NewSource(sc.Seed))
	nEdges := int(sc.N) * sc.EdgesPerVertex
	out := make([]pagerankDataset, 0, 2)
	// Twitter-like: n vertices, dense partitions.
	tw := pagerankDataset{name: "twitter-like", n: sc.N}
	tw.edges = graph.GenPowerLaw(rng, tw.n, nEdges, 0.8, 0.8)
	tw.parts = graph.PartitionEdges(rng, tw.edges, sc.Machines)
	out = append(out, tw)
	// Yahoo-like: 4x the vertices with the same edge budget: much
	// sparser partitions (the paper's 0.21 vs 0.035 contrast).
	ya := pagerankDataset{name: "yahoo-like", n: 4 * sc.N}
	ya.edges = graph.GenPowerLaw(rng, ya.n, nEdges, 0.8, 0.8)
	ya.parts = graph.PartitionEdges(rng, ya.edges, sc.Machines)
	out = append(out, ya)
	return out
}

// pagerankRun holds the measured outcome of a distributed PageRank.
type pagerankRun struct {
	col *trace.Collector
	// maxShardNNZ bounds per-iteration local compute.
	maxShardNNZ int
	wall        time.Duration
}

// runPagerank executes the distributed PageRank over the given degrees
// and records its traffic.
func runPagerank(ds pagerankDataset, degrees []int, iters int) (*pagerankRun, error) {
	bf, err := topo.New(degrees)
	if err != nil {
		return nil, err
	}
	m := bf.M()
	if m != len(ds.parts) {
		return nil, fmt.Errorf("bench: %d partitions for %d machines", len(ds.parts), m)
	}
	shards, err := pagerank.BuildShards(ds.n, ds.edges, ds.parts)
	if err != nil {
		return nil, err
	}
	col := trace.NewCollector(m)
	net := memnet.New(m, memnet.WithRecorder(col), memnet.WithRecvTimeout(120*time.Second))
	defer net.Close()
	start := time.Now()
	err = memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		_, err = pagerank.RunNode(mach, shards[ep.Rank()], ds.n, iters)
		return err
	})
	if err != nil {
		return nil, err
	}
	run := &pagerankRun{col: col, wall: time.Since(start)}
	for _, s := range shards {
		if s.NNZ() > run.maxShardNNZ {
			run.maxShardNNZ = s.NNZ()
		}
	}
	return run, nil
}

// perIterSeconds converts a PageRank run into modelled per-iteration
// seconds: the reduce+gather network time (configuration runs once and
// is excluded, as in the paper's per-iteration numbers) plus the local
// SpMV compute.
func perIterSeconds(run *pagerankRun, model netsim.Model, iters int) (compute, comm float64) {
	rep := netsim.Estimate(run.col, model, model.Cores)
	comm = rep.ReduceSec / float64(iters)
	compute = model.ComputeTime(int64(run.maxShardNNZ))
	return compute, comm
}

// Figure8 reproduces the system comparison on PageRank: Kylix (optimal
// butterfly), the direct all-to-all pattern standing in for PowerGraph,
// and the MapReduce engine standing in for Hadoop/Pegasus. The paper
// reports Kylix 3-7x faster than PowerGraph and ~500x faster than
// Hadoop; log-scale gaps of those magnitudes are the target shape.
func Figure8(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 8: PageRank runtime per iteration by system (modelled EC2 seconds)",
		Note:   "kylix = optimal nested butterfly; direct(powergraph-proxy) = all-to-all\npattern PowerGraph uses; mapreduce(hadoop-proxy) = per-iteration disk+shuffle jobs",
		Header: []string{"dataset", "system", "perIterSec", "vsKylix"},
	}
	anchors := map[string]float64{
		"twitter-like": twitterProfile().paperNodeBytes,
		"yahoo-like":   yahooProfile().paperNodeBytes,
	}
	for _, ds := range genPagerankDatasets(sc) {
		density := graph.DensityOfPartition(ds.n, ds.parts)
		model := scaledEC2(density*float64(ds.n)*4, anchors[ds.name])
		degrees, err := designForDensity(model, ds.n, density, sc.Machines)
		if err != nil {
			return nil, err
		}
		kylixRun, err := runPagerank(ds, degrees, sc.PageRankIters)
		if err != nil {
			return nil, err
		}
		kc, kn := perIterSeconds(kylixRun, model, sc.PageRankIters)
		kylixSec := kc + kn

		directRun, err := runPagerank(ds, topo.Direct(sc.Machines), sc.PageRankIters)
		if err != nil {
			return nil, err
		}
		dc, dn := perIterSeconds(directRun, model, sc.PageRankIters)
		directSec := dc + dn

		engine := &mapreduce.Engine{Machines: sc.Machines}
		_, _, mrSec, err := mapreduce.PageRank(engine, int32(ds.n), ds.parts, sc.PageRankIters, pagerank.Damping, model)
		if err != nil {
			return nil, err
		}

		for _, row := range []struct {
			system string
			sec    float64
		}{
			{"kylix", kylixSec},
			{"direct (powergraph-proxy)", directSec},
			{"mapreduce (hadoop-proxy)", mrSec},
		} {
			t.Rows = append(t.Rows, []string{
				ds.name, row.system, f6(row.sec), fmt.Sprintf("%.1fx", row.sec/kylixSec),
			})
		}
	}
	return t, nil
}

// Figure9 reproduces the scaling study: per-iteration compute/comm
// breakdown and speedup over the smallest cluster as machine count
// grows, with degrees retuned per size. The paper sees 7-11x speedup at
// 64 nodes over 4 and communication dominating beyond 32.
func Figure9(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 9: PageRank scaling with cluster size (modelled EC2 seconds/iter)",
		Note:   "degrees retuned per cluster size; speedup relative to the smallest\nsize; communication share grows with m",
		Header: []string{"machines", "degrees", "computeSec", "commSec", "totalSec", "speedup", "commShare"},
	}
	sizes := []int{4, 8, 16, 32, 64}
	var filtered []int
	for _, m := range sizes {
		if m <= sc.Machines {
			filtered = append(filtered, m)
		}
	}
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	n := sc.N
	edges := graph.GenPowerLaw(rng, n, int(n)*sc.EdgesPerVertex, 0.8, 0.8)
	// The model constants are fixed across cluster sizes (they describe
	// the network, not the workload); anchor them on the widest
	// partitioning, matching the Twitter experiment's 64-way density.
	anchorDensity := graph.DensityOfPartition(n, graph.PartitionEdges(rand.New(rand.NewSource(sc.Seed+2)), edges, filtered[len(filtered)-1]))
	model := scaledEC2(anchorDensity*float64(n)*4, twitterProfile().paperNodeBytes)
	var baseSec float64
	for _, m := range filtered {
		parts := graph.PartitionEdges(rng, edges, m)
		ds := pagerankDataset{name: "scaling", n: n, edges: edges, parts: parts}
		density := graph.DensityOfPartition(n, parts)
		degrees, err := designForDensity(model, n, density, m)
		if err != nil {
			return nil, err
		}
		run, err := runPagerank(ds, degrees, sc.PageRankIters)
		if err != nil {
			return nil, err
		}
		compute, commSec := perIterSeconds(run, model, sc.PageRankIters)
		total := compute + commSec
		if baseSec == 0 {
			baseSec = total
		}
		t.Rows = append(t.Rows, []string{
			fi(int64(m)), topo.MustNew(degrees).String(),
			f6(compute), f6(commSec), f6(total),
			fmt.Sprintf("%.1fx", baseSec/total),
			fmt.Sprintf("%.0f%%", 100*commSec/total),
		})
	}
	return t, nil
}

// designForDensity runs the §IV workflow at experiment scale: the
// packet floor is the scaled model's ~80%-of-peak packet size, mirroring
// how the paper reads its 5 MB floor off Figure 2.
func designForDensity(model netsim.Model, n int64, density float64, m int) ([]int, error) {
	if density <= 0 {
		density = 0.01
	}
	if density >= 1 {
		density = 0.99
	}
	minPacket := model.MinEfficientPacket(0.8)
	if minPacket < 64 {
		minPacket = 64
	}
	return designOrFallback(n, density, m, minPacket)
}

func designOrFallback(n int64, density float64, m int, minPacket float64) ([]int, error) {
	degrees, err := powerlaw.Design(powerlaw.DesignInput{
		N: n, Alpha: 0.8, Density0: density,
		Machines: m, ElemBytes: 4, MinPacket: minPacket,
	})
	if err != nil {
		// Fall back to the canonical heterogeneous shape rather than
		// failing the whole experiment.
		return scaleDegrees([]int{8, 4, 2}, m), nil
	}
	return degrees, nil
}
