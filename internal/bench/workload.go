package bench

import (
	"fmt"
	"math/rand"
	"time"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/powerlaw"
	"kylix/internal/replica"
	"kylix/internal/sparse"
	"kylix/internal/topo"
	"kylix/internal/trace"
)

// workload is a synthetic sparse-allreduce input: one power-law index
// set per logical machine (in = out, as in the graph workloads where
// both follow the partition's vertex set).
type workload struct {
	sets []sparse.Set
	vals [][]float32
	n    int64
}

// genWorkload draws per-machine sets at the profile's density.
func genWorkload(p profile, n int64, logical int, seed int64) (*workload, error) {
	gen, err := powerlaw.NewGeneratorForDensity(n, p.alpha, p.density)
	if err != nil {
		return nil, err
	}
	w := &workload{n: n}
	for i := 0; i < logical; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		set := gen.NodeSet(rng)
		if len(set) == 0 {
			set = sparse.MustNewSet([]int32{int32(i)})
		}
		vals := make([]float32, len(set))
		for j := range vals {
			vals[j] = rng.Float32()
		}
		w.sets = append(w.sets, set)
		w.vals = append(w.vals, vals)
	}
	return w, nil
}

// runResult aggregates one allreduce round's observations.
type runResult struct {
	col          *trace.Collector
	bottomOut    int64 // sum over machines of fully reduced bottom sizes
	maxLocalNNZ  int   // largest per-machine set (compute-cost proxy)
	wall         time.Duration
	reduceRounds int
}

// runAllreduce executes configure + reduceRounds reductions of the
// workload over the given topology, with optional replication and dead
// machines, recording all traffic.
func runAllreduce(w *workload, degrees []int, replication int, dead []int, reduceRounds int) (*runResult, error) {
	bf, err := topo.New(degrees)
	if err != nil {
		return nil, err
	}
	logical := bf.M()
	if logical != len(w.sets) {
		return nil, fmt.Errorf("bench: workload has %d partitions, topology %d", len(w.sets), logical)
	}
	phys := logical * replication
	col := trace.NewCollector(phys)
	net := memnet.New(phys, memnet.WithRecorder(col), memnet.WithRecvTimeout(60*time.Second))
	defer net.Close()
	for _, d := range dead {
		net.Kill(d)
	}

	bottoms := make([]int64, phys)
	start := time.Now()
	err = memnet.Run(net, func(pep comm.Endpoint) error {
		ep := pep
		if replication > 1 {
			var err error
			ep, err = replica.Wrap(pep, replication)
			if err != nil {
				return err
			}
		}
		q := ep.Rank()
		m, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		cfg, err := m.Configure(w.sets[q], w.sets[q])
		if err != nil {
			return err
		}
		bottoms[pep.Rank()] = int64(cfg.BottomOutSize())
		for r := 0; r < reduceRounds; r++ {
			if _, err := cfg.Reduce(w.vals[q]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &runResult{col: col, wall: time.Since(start), reduceRounds: reduceRounds}
	// Bottom volume counted once per logical machine (primary replica).
	for p, b := range bottoms {
		if p < logical {
			res.bottomOut += b
		}
	}
	for _, s := range w.sets {
		if len(s) > res.maxLocalNNZ {
			res.maxLocalNNZ = len(s)
		}
	}
	return res, nil
}
