package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/des"
	"kylix/internal/memnet"
	"kylix/internal/netsim"
	"kylix/internal/powerlaw"
	"kylix/internal/topo"
	"kylix/internal/trace"
)

// AblationDesignSearch validates the §IV design workflow against brute
// force: it evaluates *every* ordered factorization of m under the
// Proposition 4.1 traffic predictions and the cost model, and shows
// where the workflow's greedy pick lands. The paper's claim is that the
// workflow yields the optimal network; the table lists the best
// factorizations by predicted allreduce time with the workflow's choice
// marked.
func AblationDesignSearch(sc Scale) (*Table, error) {
	p := twitterProfile()
	model := modelFor(p, sc)
	lambda0, err := powerlaw.SolveLambda(sc.N, p.alpha, p.density)
	if err != nil {
		return nil, err
	}
	chosen, err := designForDensity(model, sc.N, p.density, sc.Machines)
	if err != nil {
		return nil, err
	}
	chosenKey := topo.MustNew(chosen).String()

	type cand struct {
		degrees []int
		sec     float64
	}
	var cands []cand
	for _, f := range powerlaw.Factorizations(sc.Machines) {
		if len(f) == 0 {
			f = []int{1}
		}
		sec, err := predictAllreduceTime(sc.N, p.alpha, lambda0, f, model)
		if err != nil {
			return nil, err
		}
		cands = append(cands, cand{degrees: f, sec: sec})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].sec < cands[b].sec })

	t := &Table{
		Title: "Ablation: §IV workflow vs exhaustive degree search (predicted reduce time)",
		Note: fmt.Sprintf("all %d ordered factorizations of m=%d evaluated under Prop 4.1 traffic\nand the cost model; '<- workflow' marks the greedy §IV choice (%s)",
			len(cands), sc.Machines, chosenKey),
		Header: []string{"rank", "degrees", "predictedSec", "vsBest"},
	}
	best := cands[0].sec
	shown := 0
	for i, c := range cands {
		key := topo.MustNew(c.degrees).String()
		mark := ""
		if key == chosenKey {
			mark = "  <- workflow"
		}
		if shown < 6 || mark != "" {
			t.Rows = append(t.Rows, []string{
				fi(int64(i + 1)), key + mark,
				f6(c.sec), fmt.Sprintf("%.2fx", c.sec/best),
			})
			shown++
		}
	}
	return t, nil
}

// predictAllreduceTime models a full reduce+gather round from the
// Proposition 4.1 per-layer traffic (no protocol run needed): each
// communication layer moves the predicted per-node volume in d messages
// both down and up.
func predictAllreduceTime(n int64, alpha, lambda0 float64, degrees []int, model netsim.Model) (float64, error) {
	layers, err := powerlaw.PredictTraffic(n, alpha, lambda0, degrees)
	if err != nil {
		return 0, err
	}
	m := 1
	for _, d := range degrees {
		m *= d
	}
	total := 0.0
	for _, l := range layers {
		perNodeElems := l.TotalElems / float64(m)
		// Wire traffic excludes the self piece (1/d of the volume).
		wireBytes := int64(perNodeElems * 4 * float64(l.Degree-1) / float64(l.Degree))
		msgs := int64(l.Degree - 1)
		if msgs == 0 {
			continue
		}
		// Down (scatter-reduce) and up (allgather) both cross the layer.
		total += 2 * model.NodePhaseTime(msgs, wireBytes, model.Cores)
	}
	return total, nil
}

// AblationFusedConfigReduce compares the combined configure+reduce of
// §III against separate configuration and reduction passes on a
// minibatch-style workload whose index sets change every round: the
// fused path halves the message count and merges the index traffic into
// the value packets.
func AblationFusedConfigReduce(sc Scale) (*Table, error) {
	p := twitterProfile()
	model := modelFor(p, sc)
	w, err := genWorkload(p, sc.N, sc.Machines, sc.Seed)
	if err != nil {
		return nil, err
	}
	degrees := scaleDegrees(p.degrees, sc.Machines)
	bf, err := topo.New(degrees)
	if err != nil {
		return nil, err
	}

	run := func(fused bool) (*trace.Collector, error) {
		col := trace.NewCollector(bf.M())
		net := memnet.New(bf.M(), memnet.WithRecorder(col), memnet.WithRecvTimeout(60*time.Second))
		defer net.Close()
		err := memnet.Run(net, func(ep comm.Endpoint) error {
			m, err := core.NewMachine(ep, bf, core.Options{})
			if err != nil {
				return err
			}
			q := ep.Rank()
			if fused {
				_, _, err = m.ConfigureReduce(w.sets[q], w.sets[q], w.vals[q])
				return err
			}
			cfg, err := m.Configure(w.sets[q], w.sets[q])
			if err != nil {
				return err
			}
			_, err = cfg.Reduce(w.vals[q])
			return err
		})
		return col, err
	}

	t := &Table{
		Title:  "Ablation: fused configure+reduce vs separate passes (one minibatch round)",
		Note:   "when in/out sets change every allreduce (§III minibatch case), fusing\nconfig and reduce into combined messages saves a full message round",
		Header: []string{"mode", "msgs", "bytesMB", "modelSec"},
	}
	for _, mode := range []struct {
		name  string
		fused bool
	}{{"separate", false}, {"fused", true}} {
		col, err := run(mode.fused)
		if err != nil {
			return nil, err
		}
		var msgs, bytes int64
		for _, lt := range col.Layers() {
			if lt.Kind == comm.KindConfig || lt.Kind == comm.KindReduce ||
				lt.Kind == comm.KindGather || lt.Kind == comm.KindConfigReduce {
				msgs += lt.Msgs
				bytes += lt.Bytes
			}
		}
		rep := netsim.Estimate(col, model, model.Cores)
		t.Rows = append(t.Rows, []string{
			mode.name, fi(msgs), fmtMB(bytes), f6(rep.TotalSec()),
		})
	}
	return t, nil
}

// AblationPacketRacing quantifies §V-B: replication races every receive
// across the replicas, so on networks with latency variance the
// *expected* phase latency falls even though total traffic doubles. The
// table sweeps latency spread (log-normal sigma) for an unreplicated and
// a 2x-replicated 8-wide layer.
func AblationPacketRacing() *Table {
	t := &Table{
		Title:  "Ablation: §V-B packet racing under latency variance (expected phase latency, ms)",
		Note:   "a node waits for d=8 peers; latencies are log-normal with median 1 ms;\nracing takes the faster of 2 replica copies per peer",
		Header: []string{"sigma", "unreplicated", "replicated(s=2)", "racingGain"},
	}
	for _, sigma := range []float64{0, 0.2, 0.5, 1.0, 1.5} {
		rm := netsim.RacingModel{BaseLatency: 1, Sigma: sigma}
		rng := rand.New(rand.NewSource(1234))
		plain := rm.PhaseLatency(rng, 8, 1, 20000)
		raced := rm.PhaseLatency(rng, 8, 2, 20000)
		t.Rows = append(t.Rows, []string{
			f3(sigma), f3(plain), f3(raced), fmt.Sprintf("%.2fx", plain/raced),
		})
	}
	return t
}

// AblationJitterDES uses the discrete-event simulator to replay the
// protocol's dependency structure under log-normal latency jitter: it
// shows (a) the binary butterfly paying its extra layers, (b) direct
// all-to-all's 64-way fan-in degrading fastest as jitter grows, and (c)
// packet racing recovering much of the jitter cost — the §V-B and §VI-B
// variability arguments with protocol structure intact.
func AblationJitterDES(sc Scale) (*Table, error) {
	p := twitterProfile()
	model := modelFor(p, sc)
	// Latency large enough to matter against the scaled transfer times.
	model.LatencySec = model.MsgOverheadSec * 2
	lambda0, err := powerlaw.SolveLambda(sc.N, p.alpha, p.density)
	if err != nil {
		return nil, err
	}
	layerBytesFor := func(degrees []int) []float64 {
		stats := powerlaw.Predict(sc.N, p.alpha, lambda0, degrees)
		out := make([]float64, len(degrees))
		for i := range degrees {
			out[i] = stats[i].ElemsPerNode * 4
		}
		return out
	}
	t := &Table{
		Title:  "Ablation: protocol-structure simulation under latency jitter (DES, relative makespan)",
		Note:   "discrete-event replay of the round's dependency graph; entries are\nmakespans normalized to the optimal topology at sigma=0; 'raced'\nreplicates messages 2x and takes the first copy (§V-B)",
		Header: []string{"sigma", "optimal", "binary", "direct", "optimal(raced)"},
	}
	type variant struct {
		degrees []int
		repl    int
	}
	optimal := scaleDegrees(p.degrees, sc.Machines)
	variants := []variant{
		{optimal, 1},
	}
	if bin, err := topo.Binary(sc.Machines); err == nil {
		variants = append(variants, variant{bin, 1})
	} else {
		variants = append(variants, variant{optimal, 1})
	}
	variants = append(variants, variant{topo.Direct(sc.Machines), 1}, variant{optimal, 2})

	var base float64
	for _, sigma := range []float64{0, 0.5, 1.0} {
		row := []string{f3(sigma)}
		for _, v := range variants {
			cfg := des.Config{
				Topology:     topo.MustNew(v.degrees),
				LayerBytes:   layerBytesFor(v.degrees),
				Model:        model,
				Threads:      model.Cores,
				LatencySigma: sigma,
				Replication:  v.repl,
				Gather:       true,
			}
			mk, err := des.ExpectedMakespan(cfg, sc.Seed, 60)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = mk
			}
			row = append(row, fmt.Sprintf("%.2fx", mk/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
