package bench

import (
	"sync"
	"testing"

	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/topo"
)

// BenchmarkReduceWarmQuick is the hot-path gate benchmark: repeated
// Config.Reduce rounds on a warm (already configured, arena-populated)
// config at QuickScale — the paper's 64-machine optimal topology over a
// twitter-like power-law workload. One op is one full collective round
// across all machines. scripts/bench.sh fails the PR gate if this
// benchmark reports any allocs/op: the steady-state reduction must run
// entirely from the per-Config scratch arena.
func BenchmarkReduceWarmQuick(b *testing.B) {
	sc := QuickScale()
	p := twitterProfile()
	w, err := genWorkload(p, sc.N, sc.Machines, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	bf := topo.MustNew(scaleDegrees(p.degrees, sc.Machines))

	net := memnet.New(sc.Machines)
	defer net.Close()

	var ready, done sync.WaitGroup
	start := make(chan struct{})
	ready.Add(sc.Machines)
	done.Add(sc.Machines)
	errs := make([]error, sc.Machines)
	for q := 0; q < sc.Machines; q++ {
		go func(q int) {
			defer done.Done()
			fail := func(err error) {
				errs[q] = err
				ready.Done()
			}
			m, err := core.NewMachine(net.Endpoint(q), bf, core.Options{})
			if err != nil {
				fail(err)
				return
			}
			cfg, err := m.Configure(w.sets[q], w.sets[q])
			if err != nil {
				fail(err)
				return
			}
			// Warm both scratch-arena generations before the timed loop.
			for r := 0; r < 2; r++ {
				if _, err := cfg.Reduce(w.vals[q]); err != nil {
					fail(err)
					return
				}
			}
			ready.Done()
			<-start
			for i := 0; i < b.N; i++ {
				if _, err := cfg.Reduce(w.vals[q]); err != nil {
					errs[q] = err
					return
				}
			}
		}(q)
	}
	ready.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	close(start)
	done.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}
