package bench

import (
	"sync"
	"testing"

	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/obs"
	"kylix/internal/topo"
)

// BenchmarkReduceWarmQuick is the hot-path gate benchmark: repeated
// Config.Reduce rounds on a warm (already configured, arena-populated)
// config at QuickScale — the paper's 64-machine optimal topology over a
// twitter-like power-law workload. One op is one full collective round
// across all machines. scripts/bench.sh fails the PR gate if this
// benchmark reports any allocs/op: the steady-state reduction must run
// entirely from the per-Config scratch arena.
func BenchmarkReduceWarmQuick(b *testing.B) {
	benchReduceWarm(b, nil)
}

// BenchmarkReduceWarmObs is the same gate with the full observability
// layer live: per-layer span tracing on every machine and the receive
// observer installed on every mailbox. It must also report 0 allocs/op —
// the spans are stack values and the observer only touches preallocated
// atomics, so turning observability on must not cost the hot path its
// allocation-free property.
func BenchmarkReduceWarmObs(b *testing.B) {
	benchReduceWarm(b, obs.New(QuickScale().Machines, 0))
}

func benchReduceWarm(b *testing.B, o *obs.Observatory) {
	sc := QuickScale()
	p := twitterProfile()
	w, err := genWorkload(p, sc.N, sc.Machines, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	bf := topo.MustNew(scaleDegrees(p.degrees, sc.Machines))

	net := memnet.New(sc.Machines, memnet.WithRecvObserver(o.RecvObserver))
	defer net.Close()

	var ready, done sync.WaitGroup
	start := make(chan struct{})
	ready.Add(sc.Machines)
	done.Add(sc.Machines)
	errs := make([]error, sc.Machines)
	for q := 0; q < sc.Machines; q++ {
		go func(q int) {
			defer done.Done()
			fail := func(err error) {
				errs[q] = err
				ready.Done()
			}
			m, err := core.NewMachine(net.Endpoint(q), bf, core.Options{Tracer: o.Node(q)})
			if err != nil {
				fail(err)
				return
			}
			cfg, err := m.Configure(w.sets[q], w.sets[q])
			if err != nil {
				fail(err)
				return
			}
			// Warm both scratch-arena generations before the timed loop.
			for r := 0; r < 2; r++ {
				if _, err := cfg.Reduce(w.vals[q]); err != nil {
					fail(err)
					return
				}
			}
			ready.Done()
			<-start
			for i := 0; i < b.N; i++ {
				if _, err := cfg.Reduce(w.vals[q]); err != nil {
					errs[q] = err
					return
				}
			}
		}(q)
	}
	ready.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	close(start)
	done.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}
