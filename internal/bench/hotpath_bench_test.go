package bench

import (
	"sync"
	"testing"

	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/obs"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// BenchmarkReduceWarmQuick is the hot-path gate benchmark: repeated
// Config.Reduce rounds on a warm (already configured, arena-populated)
// config at QuickScale — the paper's 64-machine optimal topology over a
// twitter-like power-law workload. One op is one full collective round
// across all machines. scripts/bench.sh fails the PR gate if this
// benchmark reports any allocs/op: the steady-state reduction must run
// entirely from the per-Config scratch arena.
func BenchmarkReduceWarmQuick(b *testing.B) {
	benchReduceWarm(b, nil)
}

// BenchmarkReduceWarmObs is the same gate with the full observability
// layer live: per-layer span tracing on every machine and the receive
// observer installed on every mailbox. It must also report 0 allocs/op —
// the spans are stack values and the observer only touches preallocated
// atomics, so turning observability on must not cost the hot path its
// allocation-free property.
func BenchmarkReduceWarmObs(b *testing.B) {
	benchReduceWarm(b, obs.New(QuickScale().Machines, 0))
}

// BenchmarkReduceWarmW4 and BenchmarkReduceWarmW4Workers are the
// Figure 7 contrast: the same warm width-4 reduction with the combine
// stage serial vs sharded across a 4-worker pool. Both run with full
// observability and must stay allocation-free — the pool's pass-scoped
// goroutines are recycled, not allocated. The workload is sized so the
// layer pieces clear par's sharding threshold (the shards/op metric
// reports how much of the pass actually forked); on boxes with fewer
// cores than workers the parallel variant measures overhead, which is
// why scripts/bench.sh gates the speedup only at >=4 cores.
func BenchmarkReduceWarmW4(b *testing.B) {
	benchReduceWarmW4(b, 1)
}

func BenchmarkReduceWarmW4Workers(b *testing.B) {
	benchReduceWarmW4(b, 4)
}

func benchReduceWarmW4(b *testing.B, workers int) {
	const (
		machines = 8
		width    = 4
		n        = 1 << 17
	)
	o := obs.New(machines, 0)
	p := twitterProfile()
	w, err := genWorkload(p, n, machines, QuickScale().Seed)
	if err != nil {
		b.Fatal(err)
	}
	// Two layers (not scaleDegrees' single 8) so layer pieces stay large:
	// a piece is ~set/4 rows, which at width 4 crosses the shard floor.
	bf := topo.MustNew([]int{4, 2})

	net := memnet.New(machines, memnet.WithRecvObserver(o.RecvObserver))
	defer net.Close()

	var ready, done sync.WaitGroup
	start := make(chan struct{})
	ready.Add(machines)
	done.Add(machines)
	errs := make([]error, machines)
	for q := 0; q < machines; q++ {
		go func(q int) {
			defer done.Done()
			fail := func(err error) {
				errs[q] = err
				ready.Done()
			}
			m, err := core.NewMachine(net.Endpoint(q), bf, core.Options{
				Width:          width,
				CombineWorkers: workers,
				Tracer:         o.Node(q),
			})
			if err != nil {
				fail(err)
				return
			}
			set := w.sets[q]
			vals := make([]float32, len(set)*width)
			for j := range vals {
				vals[j] = w.vals[q][j/width]
			}
			cfg, err := m.Configure(set, set)
			if err != nil {
				fail(err)
				return
			}
			for r := 0; r < 2; r++ {
				if _, err := cfg.Reduce(vals); err != nil {
					fail(err)
					return
				}
			}
			ready.Done()
			<-start
			for i := 0; i < b.N; i++ {
				if _, err := cfg.Reduce(vals); err != nil {
					errs[q] = err
					return
				}
			}
		}(q)
	}
	ready.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	shards0 := o.Registry().Counter("combine_shards").Value()
	b.ReportAllocs()
	b.ResetTimer()
	close(start)
	done.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	shards := o.Registry().Counter("combine_shards").Value() - shards0
	b.ReportMetric(float64(shards)/float64(b.N), "shards/op")
}

// BenchmarkReduceWarmFP16 and BenchmarkReduceWarmINT8 are the wire
// quantization gates: a warm power-law (Zipf-profile) reduction with
// the value codec on. Both must stay 0 allocs/op — quantize/dequantize
// run entirely from the preallocated QVals arena and landing buffers —
// and both report the value-plane wire accounting: valbytes/op
// (encoded bytes per collective round), rawvalbytes/op (the float32
// equivalent), and valx (their ratio, the payload-bytes reduction
// scripts/bench.sh gates at >=1.7x for fp16). They run at a 16-machine
// scale: on the in-memory transport quantization adds encode compute
// without removing any wire time, so the 64-machine op is slow enough
// that fixture noise (mailbox tag-index growth, stack growth) stops
// amortizing to 0 allocs/op within the bench time; the ratio is
// workload-shape-, not size-, dependent.
func BenchmarkReduceWarmFP16(b *testing.B) {
	benchReduceWarmQuant(b, obs.New(quantScale().Machines, 0), sparse.QuantFP16, quantScale())
}

func BenchmarkReduceWarmINT8(b *testing.B) {
	benchReduceWarmQuant(b, obs.New(quantScale().Machines, 0), sparse.QuantINT8, quantScale())
}

func quantScale() Scale {
	return Scale{N: 1 << 11, Machines: 16, EdgesPerVertex: 8, PageRankIters: 2, Seed: 20140901}
}

func benchReduceWarm(b *testing.B, o *obs.Observatory) {
	benchReduceWarmQuant(b, o, sparse.QuantOff, QuickScale())
}

func benchReduceWarmQuant(b *testing.B, o *obs.Observatory, quant sparse.Quantization, sc Scale) {
	p := twitterProfile()
	w, err := genWorkload(p, sc.N, sc.Machines, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	bf := topo.MustNew(scaleDegrees(p.degrees, sc.Machines))

	net := memnet.New(sc.Machines, memnet.WithRecvObserver(o.RecvObserver))
	defer net.Close()

	var ready, done sync.WaitGroup
	start := make(chan struct{})
	ready.Add(sc.Machines)
	done.Add(sc.Machines)
	errs := make([]error, sc.Machines)
	for q := 0; q < sc.Machines; q++ {
		go func(q int) {
			defer done.Done()
			fail := func(err error) {
				errs[q] = err
				ready.Done()
			}
			m, err := core.NewMachine(net.Endpoint(q), bf, core.Options{Tracer: o.Node(q), Quant: quant})
			if err != nil {
				fail(err)
				return
			}
			cfg, err := m.Configure(w.sets[q], w.sets[q])
			if err != nil {
				fail(err)
				return
			}
			// Warm both scratch-arena generations before the timed loop.
			for r := 0; r < 2; r++ {
				if _, err := cfg.Reduce(w.vals[q]); err != nil {
					fail(err)
					return
				}
			}
			ready.Done()
			<-start
			for i := 0; i < b.N; i++ {
				if _, err := cfg.Reduce(w.vals[q]); err != nil {
					errs[q] = err
					return
				}
			}
		}(q)
	}
	ready.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	var enc0, raw0 int64
	if o != nil {
		enc0 = o.Registry().Counter("values_bytes_encoded").Value()
		raw0 = o.Registry().Counter("values_bytes_raw").Value()
	}
	b.ReportAllocs()
	b.ResetTimer()
	close(start)
	done.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	if o != nil && quant != sparse.QuantOff {
		enc := o.Registry().Counter("values_bytes_encoded").Value() - enc0
		raw := o.Registry().Counter("values_bytes_raw").Value() - raw0
		b.ReportMetric(float64(enc)/float64(b.N), "valbytes/op")
		b.ReportMetric(float64(raw)/float64(b.N), "rawvalbytes/op")
		b.ReportMetric(float64(raw)/float64(enc), "valx")
	}
}
