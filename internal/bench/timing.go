package bench

import (
	"fmt"

	"kylix/internal/netsim"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// Figure6 compares config and reduce times across topologies — direct
// all-to-all, the optimal heterogeneous butterfly, and the binary
// butterfly — on both dataset profiles. Times are modelled EC2 seconds
// from measured traffic; the paper reports the optimal butterfly 3-5x
// faster than the alternatives.
func Figure6(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 6: config/reduce time by topology (modelled EC2 seconds)",
		Note:   "optimal butterfly keeps packets above the efficient floor; direct\nall-to-all fragments them; binary butterfly pays extra layers",
		Header: []string{"dataset", "topology", "degrees", "configSec", "reduceSec", "totalSec", "vsOptimal"},
	}
	for _, p := range []profile{twitterProfile(), yahooProfile()} {
		model := modelFor(p, sc)
		w, err := genWorkload(p, sc.N, sc.Machines, sc.Seed)
		if err != nil {
			return nil, err
		}
		type topoCase struct {
			name    string
			degrees []int
		}
		cases := []topoCase{
			{"optimal", scaleDegrees(p.degrees, sc.Machines)},
			{"direct", topo.Direct(sc.Machines)},
		}
		if bin, err := topo.Binary(sc.Machines); err == nil {
			cases = append(cases, topoCase{"binary", bin})
		}
		totals := make([]float64, len(cases))
		reports := make([]netsim.Report, len(cases))
		for i, tc := range cases {
			res, err := runAllreduce(w, tc.degrees, 1, nil, 1)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.name, tc.name, err)
			}
			reports[i] = netsim.Estimate(res.col, model, model.Cores)
			totals[i] = reports[i].TotalSec()
		}
		for i, tc := range cases {
			t.Rows = append(t.Rows, []string{
				p.name, tc.name, topo.MustNew(tc.degrees).String(),
				f6(reports[i].ConfigSec), f6(reports[i].ReduceSec), f6(totals[i]),
				fmt.Sprintf("%.1fx", totals[i]/totals[0]),
			})
		}
	}
	return t, nil
}

// Figure7 reproduces the thread-count sweep: the same Twitter-like
// allreduce traffic timed under 1..32 send/receive threads per node.
// Gains are large up to ~4 threads, marginal beyond 16 (the hardware
// thread count of the paper's cc2.8xlarge nodes).
func Figure7(sc Scale) (*Table, error) {
	p := twitterProfile()
	model := modelFor(p, sc)
	w, err := genWorkload(p, sc.N, sc.Machines, sc.Seed)
	if err != nil {
		return nil, err
	}
	res, err := runAllreduce(w, scaleDegrees(p.degrees, sc.Machines), 1, nil, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7: allreduce runtime vs thread count (modelled EC2 seconds)",
		Note:   "per-message overhead parallelizes across threads until the 16\nhardware threads are saturated; wire time is a floor",
		Header: []string{"threads", "configSec", "reduceSec", "totalSec"},
	}
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		rep := netsim.Estimate(res.col, model, threads)
		t.Rows = append(t.Rows, []string{
			fi(int64(threads)), f6(rep.ConfigSec), f6(rep.ReduceSec), f6(rep.TotalSec()),
		})
	}
	return t, nil
}

// TableI reproduces the fault-tolerance cost table: the optimal
// unreplicated network, a half-size unreplicated reference, and the
// replicated network under 0-3 machine failures. Replication costs a
// modest constant factor (paper: ~25% on config, ~60% on reduce) and
// runtime is independent of the failure count.
func TableI(sc Scale) (*Table, error) {
	p := twitterProfile()
	model := modelFor(p, sc)
	m := sc.Machines
	if m%2 != 0 {
		return nil, fmt.Errorf("bench: TableI needs an even machine count, got %d", m)
	}
	w64, err := genWorkload(p, sc.N, m, sc.Seed)
	if err != nil {
		return nil, err
	}
	// The 32-part workload merges partition pairs: same total data.
	w32 := &workload{n: w64.n}
	for i := 0; i < m/2; i++ {
		union, maps := sparse.UnionWithMaps([]sparse.Set{w64.sets[i], w64.sets[i+m/2]})
		vals := make([]float32, len(union))
		sparse.CombineInto(sparse.Sum, vals, maps[0], w64.vals[i], 1)
		sparse.CombineInto(sparse.Sum, vals, maps[1], w64.vals[i+m/2], 1)
		w32.sets = append(w32.sets, union)
		w32.vals = append(w32.vals, vals)
	}

	fullDegrees := scaleDegrees(p.degrees, m)
	halfDegrees := scaleDegrees(p.degrees, m/2)
	t := &Table{
		Title: "Table I: cost of fault tolerance (modelled EC2 seconds)",
		Note: fmt.Sprintf("%s unreplicated (%d machines) vs %s replication=2 (%d machines, data in %d parts)\nwith 0-3 dead machines; runtime is independent of the failure count",
			topo.MustNew(fullDegrees).String(), m, topo.MustNew(halfDegrees).String(), m, m/2),
		Header: []string{"network", "replication", "machines", "dead", "configSec", "reduceSec"},
	}
	addRow := func(degrees []int, repl int, dead []int, w *workload) error {
		res, err := runAllreduce(w, degrees, repl, dead, 1)
		if err != nil {
			return err
		}
		rep := netsim.Estimate(res.col, model, model.Cores)
		t.Rows = append(t.Rows, []string{
			topo.MustNew(degrees).String(), fi(int64(repl)),
			fi(int64(len(w.sets) * repl)), fi(int64(len(dead))),
			f6(rep.ConfigSec), f6(rep.ReduceSec),
		})
		return nil
	}
	if err := addRow(fullDegrees, 1, nil, w64); err != nil {
		return nil, err
	}
	if err := addRow(halfDegrees, 1, nil, w32); err != nil {
		return nil, err
	}
	for nDead := 0; nDead <= 3; nDead++ {
		// Kill secondary replicas m/2, m/2+1, ...: distinct replica
		// groups, so the network keeps one live member everywhere.
		dead := make([]int, 0, nDead)
		for i := 0; i < nDead; i++ {
			dead = append(dead, m/2+i)
		}
		if err := addRow(halfDegrees, 2, dead, w32); err != nil {
			return nil, err
		}
	}
	return t, nil
}
