package bench

import (
	"strings"
	"testing"
)

func TestAblationDesignSearchWorkflowNearOptimal(t *testing.T) {
	tab, err := AblationDesignSearch(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// The workflow's pick appears and sits within 1.5x of the brute-force
	// optimum (the paper claims it *is* the optimum; at tiny scales ties
	// and model noise can shuffle the top ranks slightly).
	found := false
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "<- workflow") {
			found = true
			ratio := cellF(t, tab, indexOfRow(tab, row[1]), 3)
			if ratio > 1.5 {
				t.Fatalf("workflow pick %.2fx off the optimum:\n%s", ratio, tab.Render())
			}
		}
	}
	if !found {
		t.Fatalf("workflow choice not marked:\n%s", tab.Render())
	}
	// Ranked ascending.
	prev := 0.0
	for r := range tab.Rows {
		v := cellF(t, tab, r, 2)
		if v < prev {
			t.Fatalf("candidates not sorted:\n%s", tab.Render())
		}
		prev = v
	}
}

func indexOfRow(tab *Table, cell1 string) int {
	for r, row := range tab.Rows {
		if row[1] == cell1 {
			return r
		}
	}
	return -1
}

func TestAblationFusedHalvesMessages(t *testing.T) {
	tab, err := AblationFusedConfigReduce(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 rows:\n%s", tab.Render())
	}
	sepMsgs := cellF(t, tab, 0, 1)
	fusedMsgs := cellF(t, tab, 1, 1)
	// Separate = config + reduce + gather rounds (3 message sweeps);
	// fused = combined + gather (2 sweeps): expect a ~1/3 cut.
	if fusedMsgs >= sepMsgs*0.75 {
		t.Fatalf("fusion saved too few messages (%v vs %v):\n%s", fusedMsgs, sepMsgs, tab.Render())
	}
	sepSec := cellF(t, tab, 0, 3)
	fusedSec := cellF(t, tab, 1, 3)
	if fusedSec >= sepSec {
		t.Fatalf("fusion did not reduce modelled time:\n%s", tab.Render())
	}
}

func TestAblationPacketRacingGainGrowsWithVariance(t *testing.T) {
	tab := AblationPacketRacing()
	// With zero variance racing cannot help (gain ~1x); with heavy tails
	// it must help substantially, and the gain is monotone-ish in sigma.
	first := cellF(t, tab, 0, 3)
	if first < 0.99 || first > 1.01 {
		t.Fatalf("deterministic racing gain %f, want ~1:\n%s", first, tab.Render())
	}
	last := cellF(t, tab, len(tab.Rows)-1, 3)
	if last < 1.5 {
		t.Fatalf("heavy-tail racing gain only %.2fx:\n%s", last, tab.Render())
	}
	prev := 0.0
	for r := range tab.Rows {
		g := cellF(t, tab, r, 3)
		if g < prev*0.95 {
			t.Fatalf("racing gain not growing with variance:\n%s", tab.Render())
		}
		prev = g
	}
}

func TestAblationJitterDESShape(t *testing.T) {
	tab, err := AblationJitterDES(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 sigma rows:\n%s", tab.Render())
	}
	// At sigma=0: optimal is the 1.00x base and binary is slower.
	if v := cellF(t, tab, 0, 1); v < 0.99 || v > 1.01 {
		t.Fatalf("base not normalized:\n%s", tab.Render())
	}
	if cellF(t, tab, 0, 2) <= cellF(t, tab, 0, 1) {
		t.Fatalf("binary not slower at sigma=0:\n%s", tab.Render())
	}
	// Racing never hurts, and helps at the highest sigma.
	last := len(tab.Rows) - 1
	if cellF(t, tab, last, 4) >= cellF(t, tab, last, 1) {
		t.Fatalf("racing did not help at high sigma:\n%s", tab.Render())
	}
	// Makespans grow with sigma for every topology.
	for col := 1; col <= 4; col++ {
		if cellF(t, tab, last, col) <= cellF(t, tab, 0, col) {
			t.Fatalf("column %d not increasing with sigma:\n%s", col, tab.Render())
		}
	}
}
