package bench

import (
	"fmt"
	"time"

	"kylix/internal/comm"
	"kylix/internal/netsim"
	"kylix/internal/powerlaw"
	"kylix/internal/tcpnet"
)

// Figure2 reproduces the throughput-vs-packet-size curve: the modelled
// EC2 goodput at packet sizes from 64 KB to 32 MB, showing the ~5 MB
// minimum efficient packet (>=80% of peak) and the collapse below it
// (0.4 MB packets — direct allreduce on the Twitter workload — reach
// only ~a quarter of peak).
func Figure2(model netsim.Model) *Table {
	t := &Table{
		Title:  "Figure 2: network throughput vs packet size (modelled EC2, 10 Gb/s)",
		Note:   "paper anchor: ~5 MB packets needed to mask per-message overhead;\n0.4 MB packets reach roughly 30% of full bandwidth",
		Header: []string{"packetMB", "goodputGbps", "fractionOfPeak"},
	}
	for _, kb := range []int{64, 128, 256, 409, 512, 1024, 2048, 5120, 8192, 16384, 32768} {
		size := float64(kb) * 1024
		pt := model.PacketSweep([]float64{size})[0]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", size/(1<<20)),
			fmt.Sprintf("%.2f", pt.GoodputBps*8/1e9),
			fmt.Sprintf("%.0f%%", pt.Fraction*100),
		})
	}
	return t
}

// Figure2Measured sweeps real loopback TCP sockets: for each packet
// size it streams packets for a fixed wall budget between two tcpnet
// nodes and reports achieved throughput. Loopback has far lower
// per-message overhead than a datacenter network, so the knee sits at
// smaller packets; the qualitative shape (throughput rising with packet
// size to a plateau) is the claim being checked.
func Figure2Measured(perSize time.Duration) (*Table, error) {
	t := &Table{
		Title:  "Figure 2 (measured): loopback TCP throughput vs packet size",
		Note:   "real sockets on 127.0.0.1; expect the same rising-to-plateau shape\nwith the knee at much smaller packets than EC2's",
		Header: []string{"packetKB", "throughputGbps"},
	}
	nodes, err := tcpnet.LocalCluster(2, tcpnet.Options{RecvTimeout: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	defer tcpnet.CloseAll(nodes)
	seq := uint32(0)
	for _, kb := range []int{1, 4, 16, 64, 256, 1024, 4096} {
		payload := &comm.Bytes{Data: make([]byte, kb*1024)}
		deadline := time.Now().Add(perSize)
		var sent int64
		start := time.Now()
		for time.Now().Before(deadline) {
			tag := comm.MakeTag(comm.KindApp, 0, seq)
			seq++
			if err := nodes[0].Send(1, tag, payload); err != nil {
				return nil, err
			}
			if _, err := nodes[1].Recv(0, tag); err != nil {
				return nil, err
			}
			sent += int64(payload.WireSize())
		}
		elapsed := time.Since(start).Seconds()
		t.Rows = append(t.Rows, []string{
			fi(int64(kb)),
			fmt.Sprintf("%.2f", float64(sent)*8/1e9/elapsed),
		})
	}
	return t, nil
}

// Figure4 reproduces the density-vs-scaling-factor curves for alpha in
// {0.5, 1, 2}, with lambda normalized by lambda_0.9 as in the paper, to
// show the curve's modest dependence on alpha.
func Figure4() *Table {
	n := int64(1 << 20)
	alphas := []float64{0.5, 1.0, 2.0}
	t := &Table{
		Title:  "Figure 4: vector density f(lambda) vs normalized scaling factor",
		Note:   "lambda normalized by lambda_0.9 (f(lambda_0.9) = 0.9); columns per power-law exponent",
		Header: []string{"lambda/lambda0.9", "alpha=0.5", "alpha=1.0", "alpha=2.0"},
	}
	l9 := make([]float64, len(alphas))
	for i, a := range alphas {
		v, err := powerlaw.SolveLambda(n, a, 0.9)
		if err != nil {
			panic(err) // n and 0.9 are fixed valid inputs
		}
		l9[i] = v
	}
	for _, frac := range []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.5, 1.0, 2.0} {
		row := []string{fmt.Sprintf("%.3f", frac)}
		for i, a := range alphas {
			row = append(row, f3(powerlaw.Density(n, a, frac*l9[i])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure5 reproduces the per-layer total communication volume — the
// "Kylix" profile — for the Twitter-like (8x4x2, density 0.21) and
// Yahoo-like (16x4, density 0.035) configurations, with the measured
// volumes of a real protocol run next to the Proposition 4.1
// predictions. The final row is the fully reduced bottom volume, the
// paper's "last layer".
func Figure5(sc Scale) (*Table, error) {
	t := &Table{
		Title: "Figure 5: total communication volume by layer (MB, values pass)",
		Note: fmt.Sprintf("n=%d features, %d machines; volumes shrink down the layers (the Kylix shape);\nTwitter-like shrinks fast (dense vectors, ~100%% collision), Yahoo-like shallower",
			sc.N, sc.Machines),
		Header: []string{"dataset", "layer", "degree", "measuredMB", "predictedMB"},
	}
	for _, p := range []profile{twitterProfile(), yahooProfile()} {
		degrees := scaleDegrees(p.degrees, sc.Machines)
		w, err := genWorkload(p, sc.N, sc.Machines, sc.Seed)
		if err != nil {
			return nil, err
		}
		res, err := runAllreduce(w, degrees, 1, nil, 1)
		if err != nil {
			return nil, err
		}
		lambda0, err := powerlaw.SolveLambda(sc.N, p.alpha, p.density)
		if err != nil {
			return nil, err
		}
		pred, err := powerlaw.PredictTraffic(sc.N, p.alpha, lambda0, degrees)
		if err != nil {
			return nil, err
		}
		reduceLayers := res.col.KindLayers(comm.KindReduce)
		for i, lt := range reduceLayers {
			predMB := "-"
			if i < len(pred) {
				predMB = fmtMB(int64(pred[i].TotalElems * 4))
			}
			t.Rows = append(t.Rows, []string{
				p.name, fi(int64(lt.Layer)), fi(int64(degrees[i])),
				fmtMB(lt.Bytes), predMB,
			})
		}
		// Bottom layer: fully reduced volume.
		stats := powerlaw.Predict(sc.N, p.alpha, lambda0, degrees)
		bottomPred := stats[len(stats)-1].ElemsPerNode * float64(sc.Machines) * 4
		t.Rows = append(t.Rows, []string{
			p.name, "bottom", "-",
			fmtMB(res.bottomOut * 4), fmtMB(int64(bottomPred)),
		})
	}
	return t, nil
}
