package obs_test

import (
	"errors"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/memnet"
	"kylix/internal/obs"
	"kylix/internal/tcpnet"
)

// checkTimeoutObserved asserts the contract the transports must uphold:
// a timed-out receive reaches the observer as a comm.TimeoutError and
// closes an error span on the waiting rank covering the wait.
func checkTimeoutObserved(t *testing.T, o *obs.Observatory, tag comm.Tag, wait time.Duration) {
	t.Helper()
	if got := o.Registry().Counter("recv_timeouts").Value(); got != 1 {
		t.Fatalf("recv_timeouts = %d, want 1", got)
	}
	var found *obs.Span
	for _, sp := range o.Spans() {
		if sp.Err != nil {
			s := sp
			found = &s
		}
	}
	if found == nil {
		t.Fatal("no error span recorded for the timed-out receive")
	}
	if !errors.Is(found.Err, comm.ErrTimeout) {
		t.Fatalf("span error = %v, want comm.ErrTimeout", found.Err)
	}
	var terr *comm.TimeoutError
	if !errors.As(found.Err, &terr) {
		t.Fatalf("span error %T is not a *comm.TimeoutError", found.Err)
	}
	if found.Node != 0 {
		t.Fatalf("error span on node %d, want 0 (the waiting rank)", found.Node)
	}
	if found.Kind != tag.Kind() || found.Layer != tag.Layer() {
		t.Fatalf("error span (%v, L%d), want (%v, L%d)", found.Kind, found.Layer, tag.Kind(), tag.Layer())
	}
	if found.Duration() < wait {
		t.Fatalf("error span covers %v, want >= the %v timeout", found.Duration(), wait)
	}
}

func TestTimeoutErrorReachesSpansMemnet(t *testing.T) {
	const wait = 30 * time.Millisecond
	o := obs.New(2, 0)
	net := memnet.New(2,
		memnet.WithRecvTimeout(wait),
		memnet.WithRecvObserver(o.RecvObserver))
	defer net.Close()

	tag := comm.MakeTag(comm.KindReduce, 2, 5)
	if _, err := net.Endpoint(0).Recv(1, tag); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("Recv = %v, want timeout", err)
	}
	checkTimeoutObserved(t, o, tag, wait)
}

func TestTimeoutErrorReachesSpansTCP(t *testing.T) {
	const wait = 30 * time.Millisecond
	o := obs.New(2, 0)
	nodes, err := tcpnet.LocalCluster(2, tcpnet.Options{
		RecvTimeout:  wait,
		RecvObserver: o.RecvObserver,
		Metrics:      o.Transport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpnet.CloseAll(nodes)

	tag := comm.MakeTag(comm.KindGather, 1, 9)
	if _, err := nodes[0].Recv(1, tag); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("Recv = %v, want timeout", err)
	}
	checkTimeoutObserved(t, o, tag, wait)
}

// TestSuccessfulTCPTrafficFeedsCounters checks the happy-path counters
// on the real wire: bytes and messages land in the registry.
func TestSuccessfulTCPTrafficFeedsCounters(t *testing.T) {
	o := obs.New(2, 0)
	nodes, err := tcpnet.LocalCluster(2, tcpnet.Options{
		RecvTimeout:  5 * time.Second,
		RecvObserver: o.RecvObserver,
		Metrics:      o.Transport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpnet.CloseAll(nodes)

	tag := comm.MakeTag(comm.KindReduce, 1, 1)
	p := &comm.Floats{Vals: []float32{1, 2, 3}}
	if err := nodes[1].Send(0, tag, p); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].Recv(1, tag); err != nil {
		t.Fatal(err)
	}
	reg := o.Registry()
	if got := reg.Counter("recv_msgs").Value(); got != 1 {
		t.Fatalf("recv_msgs = %d, want 1", got)
	}
	if got := reg.Counter("recv_bytes").Value(); got != int64(p.WireSize()) {
		t.Fatalf("recv_bytes = %d, want %d", got, p.WireSize())
	}
}
