package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"kylix/internal/comm"
)

// traceEvent is one entry of the Chrome trace_event JSON format
// (load the output at chrome://tracing or https://ui.perfetto.dev).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// spanName renders a span's display name: the bare phase for whole-pass
// spans (Layer 0), "phase L<n>" for per-layer slices.
func spanName(sp Span) string {
	if sp.Layer == 0 {
		return sp.Kind.String()
	}
	return fmt.Sprintf("%s L%d", sp.Kind, sp.Layer)
}

// WriteChromeTrace exports the buffered spans as Chrome trace_event
// JSON: one track (pid) per machine, whole-pass slices nesting their
// per-layer slices, instant markers for fault events, and byte/peer
// volumes in each slice's args.
func (o *Observatory) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: observability not enabled")
	}
	spans := o.Spans()
	events := make([]traceEvent, 0, len(spans)+len(o.tracers))
	for node := range o.tracers {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: node,
			Args: map[string]any{"name": fmt.Sprintf("node %d", node)},
		})
	}
	for _, sp := range spans {
		if sp.Event != "" {
			events = append(events, traceEvent{
				Name: "fault:" + sp.Event, Cat: "fault", Ph: "i", S: "p",
				Ts: float64(sp.Start) / 1e3, Pid: sp.Node, Tid: 1,
			})
			continue
		}
		args := map[string]any{
			"bytes_out": sp.BytesOut,
			"bytes_in":  sp.BytesIn,
			"peers":     sp.Peers,
		}
		if sp.Err != nil {
			args["error"] = sp.Err.Error()
		}
		events = append(events, traceEvent{
			Name: spanName(sp), Cat: sp.Kind.String(), Ph: "X",
			Ts: float64(sp.Start) / 1e3, Dur: float64(sp.End-sp.Start) / 1e3,
			Pid: sp.Node, Tid: 1, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// timelineRow aggregates all spans of one (kind, layer) cell.
type timelineRow struct {
	kind              comm.Kind
	layer             int
	count, errs       int64
	durNs             int64
	bytesOut, bytesIn int64
	minStart, maxEnd  int64
	haveWindow        bool
}

// WriteTimeline renders a human-readable per-(phase, layer) summary of
// the buffered spans: counts, wall-clock window, mean slice duration
// and byte volumes — Figure 5 as a table, from a live run.
func (o *Observatory) WriteTimeline(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: observability not enabled")
	}
	rows := map[[2]int]*timelineRow{}
	var faults int64
	for _, sp := range o.Spans() {
		if sp.Event != "" {
			faults++
			continue
		}
		k := [2]int{int(sp.Kind), sp.Layer}
		r := rows[k]
		if r == nil {
			r = &timelineRow{kind: sp.Kind, layer: sp.Layer}
			rows[k] = r
		}
		r.count++
		if sp.Err != nil {
			r.errs++
		}
		r.durNs += sp.End - sp.Start
		r.bytesOut += sp.BytesOut
		r.bytesIn += sp.BytesIn
		if !r.haveWindow || sp.Start < r.minStart {
			r.minStart = sp.Start
		}
		if !r.haveWindow || sp.End > r.maxEnd {
			r.maxEnd = sp.End
		}
		r.haveWindow = true
	}
	ordered := make([]*timelineRow, 0, len(rows))
	for _, r := range rows {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].kind != ordered[b].kind {
			return ordered[a].kind < ordered[b].kind
		}
		return ordered[a].layer < ordered[b].layer
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %8s %12s %12s %14s %14s %6s\n",
		"phase/layer", "spans", "mean", "window", "wall", "bytesOut", "bytesIn", "errs")
	for _, r := range ordered {
		name := r.kind.String()
		if r.layer > 0 {
			name = fmt.Sprintf("%s L%d", r.kind, r.layer)
		}
		mean := time.Duration(0)
		if r.count > 0 {
			mean = time.Duration(r.durNs / r.count)
		}
		fmt.Fprintf(&b, "%-16s %6d %8s %12s %12s %14d %14d %6d\n",
			name, r.count, mean.Round(time.Microsecond),
			time.Duration(r.minStart).Round(time.Microsecond),
			time.Duration(r.maxEnd-r.minStart).Round(time.Microsecond),
			r.bytesOut, r.bytesIn, r.errs)
	}
	if faults > 0 {
		fmt.Fprintf(&b, "fault events: %d\n", faults)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
