package obs

import (
	"fmt"
	"net"
	"net/http"
	"sync"
)

// Server is a running metrics/trace HTTP endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup
}

// Close shuts the endpoint down and joins the serve goroutine, so a
// caller that closes and re-listens on the same address never races
// the old acceptor.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

// Handler returns the Observatory's HTTP mux:
//
//	/metrics  — expvar-style JSON snapshot of every registered metric
//	/trace    — Chrome trace_event JSON of the buffered spans
//	/timeline — human-readable per-(phase, layer) summary
func (o *Observatory) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.Registry().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := o.WriteTimeline(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Serve starts the metrics endpoint on addr and returns once the
// listener is bound; requests are served on a background goroutine.
//
//kylix:owned
func Serve(addr string, o *Observatory) (*Server, error) {
	if o == nil {
		return nil, fmt.Errorf("obs: observability not enabled")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen on %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: o.Handler()}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}
