// Package obs is the runtime observability layer: per-node span tracing
// of the protocol's config/reduce/gather passes, a low-overhead metrics
// registry (counters, gauges, log2 histograms), and exporters — a Chrome
// trace_event JSON writer and a human-readable timeline — that make a
// live run inspectable the way the paper's Figures 5-9 inspect a
// finished one. The hot-path contract is strict: with observability
// enabled, the warm Reduce must stay at 0 allocs/op (gated by
// scripts/bench.sh), so every recording primitive here is preallocated
// and lock-light.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use and never allocate.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug but not checked on the
// hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value (or high-watermark, via SetMax) metric.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger — a lock-free
// high-watermark. The fast path is a single load when the watermark
// already covers v.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is one bucket per power of two: bucket i counts samples
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram accumulates a distribution in log2 buckets: cheap enough
// for per-message observation (one atomic add, no locks) yet precise
// enough for latency quantiles within a factor of two.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
}

// Observe records one sample (negative samples clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest sample seen.
func (h *Histogram) Max() int64 { return h.max.Value() }

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// top of the log2 bucket the quantile falls in.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > want {
			if i == 0 {
				return 0
			}
			return int64(1) << uint(i) // upper bound of bucket i
		}
	}
	return h.max.Value()
}

// HistogramSnapshot is the exported summary of a Histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Mean  int64 `json:"mean"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / s.Count
	}
	return s
}

// Registry is a named collection of metrics. Registration (the
// get-or-create lookups) takes a mutex and may allocate; it is meant
// for setup time. The returned metric pointers are then used lock-free
// on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Nil-safe: a nil registry returns a live but unexported counter, so
// instrumented code never branches on "is observability on".
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe
// like Counter.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil-safe like Counter.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, shaped
// for JSON export (the expvar-style /metrics endpoint).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (map keys are emitted
// in sorted order by encoding/json, so output is diffable).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the snapshot as a compact sorted text table for logs.
func (r *Registry) String() string {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			out += fmt.Sprintf("%-32s %d\n", n, v)
		} else if v, ok := s.Gauges[n]; ok {
			out += fmt.Sprintf("%-32s %d\n", n, v)
		} else if h, ok := s.Histograms[n]; ok {
			out += fmt.Sprintf("%-32s count=%d mean=%d p50=%d p99=%d max=%d\n", n, h.Count, h.Mean, h.P50, h.P99, h.Max)
		}
	}
	return out
}

// TransportMetrics bundles the transport-level counters the TCP layer
// maintains: the reconnect machinery, the resend ring and the
// receiver-side sequence dedup. Constructed by NewTransportMetrics so
// transports can increment unconditionally — a nil registry yields
// live, unregistered metrics with identical cost.
type TransportMetrics struct {
	// ReconnectAttempts counts dials attempted while (re)building a
	// peer stream (first-dial retries included).
	ReconnectAttempts *Counter
	// Reconnects counts streams successfully (re)established, each of
	// which replayed the resend ring.
	Reconnects *Counter
	// StreamsLost counts peers declared dead after the reconnect budget
	// was exhausted.
	StreamsLost *Counter
	// DedupHits counts replayed frames the receiver dropped because
	// their sequence number was already delivered.
	DedupHits *Counter
	// ResendRingHigh is the high-watermark frame occupancy across all
	// peer resend rings.
	ResendRingHigh *Gauge
	// ReconnectRetries is the per-outage distribution of dial attempts:
	// one sample each time a stream is re-established or given up on,
	// recording how many dials the outage cost. An endless-reconnect
	// loop against a departed peer shows up here as a fat tail.
	ReconnectRetries *Histogram
	// FramesSent counts frames first handed to the wire by the batching
	// writer (reconnect replays not included).
	FramesSent *Counter
	// FramesBatched counts frames that left in a coalesced batch with at
	// least one other frame — the wins of the writev gather path.
	FramesBatched *Counter
	// WritevCalls counts gather-write syscalls issued by the batching
	// writer; FramesSent / WritevCalls is the measured frames-per-syscall
	// ratio (1.0 means no coalescing happened).
	WritevCalls *Counter
}

// NewTransportMetrics registers the transport metric set in r (nil r
// gives unregistered metrics).
func NewTransportMetrics(r *Registry) *TransportMetrics {
	return &TransportMetrics{
		ReconnectAttempts: r.Counter("tcp_reconnect_attempts"),
		Reconnects:        r.Counter("tcp_reconnects"),
		StreamsLost:       r.Counter("tcp_streams_lost"),
		DedupHits:         r.Counter("tcp_dedup_hits"),
		ResendRingHigh:    r.Gauge("tcp_resend_ring_high"),
		ReconnectRetries:  r.Histogram("tcp_reconnect_retries"),
		FramesSent:        r.Counter("tcp_frames_sent"),
		FramesBatched:     r.Counter("tcp_frames_batched"),
		WritevCalls:       r.Counter("tcp_writev_calls"),
	}
}

// MembershipMetrics bundles the elastic control plane's numbers:
// current epoch, transition counts, drain latencies and the heartbeat
// round-trip distribution. Constructed by NewMembershipMetrics so the
// membership agents can record unconditionally — a nil registry yields
// live, unregistered metrics.
type MembershipMetrics struct {
	// EpochCurrent is the highest committed epoch number any agent has
	// adopted.
	EpochCurrent *Gauge
	// EpochTransitions counts epoch adoptions across all agents (each
	// agent's cutover to a newer committed record increments it once).
	EpochTransitions *Counter
	// DrainNs is the distribution of drain (bounded quiesce) durations
	// in nanoseconds, one sample per adoption.
	DrainNs *Histogram
	// HeartbeatRTT is the distribution of control-plane heartbeat
	// round-trip times in nanoseconds, measured via clock echoes.
	HeartbeatRTT *Histogram
	// StaleEpochRejected counts control messages rejected because they
	// carried an epoch older than the receiver's committed one.
	StaleEpochRejected *Counter
	// Suspected counts peer-suspicion events (a member's heartbeats
	// went quiet past the suspicion window).
	Suspected *Counter
}

// NewMembershipMetrics registers the membership metric set in r (nil r
// gives unregistered metrics).
func NewMembershipMetrics(r *Registry) *MembershipMetrics {
	return &MembershipMetrics{
		EpochCurrent:       r.Gauge("epoch_current"),
		EpochTransitions:   r.Counter("epoch_transitions"),
		DrainNs:            r.Histogram("drain_ns"),
		HeartbeatRTT:       r.Histogram("hb_rtt_ns"),
		StaleEpochRejected: r.Counter("epoch_stale_rejected"),
		Suspected:          r.Counter("membership_suspected"),
	}
}

// StreamMetrics bundles the multi-tenant stream layer's aggregate
// numbers — opens/closes, admission rejections, scheduler waits — plus
// a constructor for per-tenant labelled counters. Constructed by
// NewStreamMetrics so the stream layer records unconditionally: a nil
// registry yields live, unregistered metrics. Registered metrics show
// up on the HTTP /metrics endpoint automatically, the per-tenant ones
// under stream/<id>/ names.
type StreamMetrics struct {
	// StreamsOpened counts streams admitted over the cluster's lifetime.
	StreamsOpened *Counter
	// StreamsClosed counts streams closed.
	StreamsClosed *Counter
	// StreamsActive is the number of currently open streams.
	StreamsActive *Gauge
	// AdmissionRejected counts passes refused at the per-stream
	// in-flight bound (backpressure working as designed).
	AdmissionRejected *Counter
	// SchedWaitNs is the distribution of time passes spent queued for a
	// fabric slot, in nanoseconds — the tenant-visible scheduling delay.
	SchedWaitNs *Histogram
	reg         *Registry
}

// NewStreamMetrics registers the stream metric set in r (nil r gives
// unregistered metrics).
func NewStreamMetrics(r *Registry) *StreamMetrics {
	return &StreamMetrics{
		StreamsOpened:     r.Counter("streams_opened"),
		StreamsClosed:     r.Counter("streams_closed"),
		StreamsActive:     r.Gauge("streams_active"),
		AdmissionRejected: r.Counter("stream_admission_rejected"),
		SchedWaitNs:       r.Histogram("stream_sched_wait_ns"),
		reg:               r,
	}
}

// StreamCounters is one tenant's labelled counter set.
type StreamCounters struct {
	// Passes counts the stream's completed collective passes.
	Passes *Counter
	// Errors counts its failed passes.
	Errors *Counter
	// Rejected counts its admission (in-flight bound) rejections.
	Rejected *Counter
}

// PerStream returns the per-tenant counters labelled stream/<id>/...
// Registration allocates (Sprintf plus map inserts); call it once at
// stream open, not per pass.
func (m *StreamMetrics) PerStream(id uint16) *StreamCounters {
	prefix := fmt.Sprintf("stream/%d/", id)
	return &StreamCounters{
		Passes:   m.reg.Counter(prefix + "passes"),
		Errors:   m.reg.Counter(prefix + "errors"),
		Rejected: m.reg.Counter(prefix + "rejected"),
	}
}
