package obs

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"kylix/internal/comm"
)

// DefaultSpanCapacity is the per-node span ring size: enough for
// thousands of collective rounds before the ring wraps (overwrites are
// counted in the spans_dropped metric, never allocated around).
const DefaultSpanCapacity = 4096

// maxLayerMetric caps the per-layer byte counter index; deeper layers
// fold into the last bucket (real topologies have <= 8 layers).
const maxLayerMetric = 16

// Observatory is one cluster's observability state: a per-node span
// Tracer, the shared metrics Registry, and the exporters. All methods
// are nil-safe so callers thread a possibly-nil *Observatory without
// branching.
type Observatory struct {
	epoch   time.Time
	reg     *Registry
	tracers []*Tracer
	trans   *TransportMetrics

	rounds        *Counter
	arenaFlips    *Counter
	combineShards *Counter
	spansDropped  *Counter
	recvMsgs      *Counter
	recvBytes     *Counter
	recvTimeouts  *Counter
	recvWait      *Histogram
	groupWait     *Histogram
	faultCounts   map[string]*Counter

	// Configuration-pass accounting: wire bytes in the compressed
	// encoding vs. what the raw 8-byte-per-key format would have cost,
	// and the incremental-reconfigure layer outcomes (fast = the layer
	// reused its previous unions and maps; full = it recomputed them).
	configBytesEnc    *Counter
	configBytesRaw    *Counter
	reconfigFastLayer *Counter
	reconfigFullLayer *Counter

	// Value-plane accounting, the reduce/gather counterpart of the
	// config-byte pair: wire bytes of every value block shipped (in
	// whatever encoding quantization selected) vs. what the raw
	// 4-byte-per-float32 format would have cost. With quantization off
	// the two advance in lockstep; their ratio is the wire-level value
	// compression.
	valuesBytesEnc *Counter
	valuesBytesRaw *Counter

	layerBytes [8][maxLayerMetric + 1]atomic.Pointer[Counter]
}

// FaultEventNames are the faultnet event labels the Observatory
// pre-registers counters for.
var FaultEventNames = []string{"drop", "duplicate", "delay", "reorder", "partition", "kill"}

// New creates an Observatory for an m-machine cluster with the given
// span ring capacity per node (<= 0 uses DefaultSpanCapacity).
func New(m, spanCap int) *Observatory {
	if spanCap <= 0 {
		spanCap = DefaultSpanCapacity
	}
	reg := NewRegistry()
	o := &Observatory{
		epoch:         time.Now(),
		reg:           reg,
		tracers:       make([]*Tracer, m),
		rounds:        reg.Counter("reduce_rounds"),
		arenaFlips:    reg.Counter("arena_flips"),
		combineShards: reg.Counter("combine_shards"),
		spansDropped:  reg.Counter("spans_dropped"),
		recvMsgs:      reg.Counter("recv_msgs"),
		recvBytes:     reg.Counter("recv_bytes"),
		recvTimeouts:  reg.Counter("recv_timeouts"),
		recvWait:      reg.Histogram("recv_wait_ns"),
		groupWait:     reg.Histogram("recv_group_wait_ns"),
		faultCounts:   make(map[string]*Counter, len(FaultEventNames)),
	}
	o.configBytesEnc = reg.Counter("config_bytes_encoded")
	o.configBytesRaw = reg.Counter("config_bytes_raw")
	o.valuesBytesEnc = reg.Counter("values_bytes_encoded")
	o.valuesBytesRaw = reg.Counter("values_bytes_raw")
	o.reconfigFastLayer = reg.Counter("reconfigure_fast_layers")
	o.reconfigFullLayer = reg.Counter("reconfigure_full_layers")
	o.trans = NewTransportMetrics(reg)
	for _, ev := range FaultEventNames {
		o.faultCounts[ev] = reg.Counter("fault_" + ev)
	}
	for i := range o.tracers {
		o.tracers[i] = &Tracer{o: o, node: i, ring: make([]Span, spanCap)}
	}
	return o
}

// now is nanoseconds since the epoch (monotonic).
func (o *Observatory) now() int64 { return int64(time.Since(o.epoch)) }

// Machines returns the cluster size the Observatory was built for.
func (o *Observatory) Machines() int {
	if o == nil {
		return 0
	}
	return len(o.tracers)
}

// Node returns rank's span tracer (nil on a nil Observatory or an
// out-of-range rank, which instruments to a no-op).
func (o *Observatory) Node(rank int) *Tracer {
	if o == nil || rank < 0 || rank >= len(o.tracers) {
		return nil
	}
	return o.tracers[rank]
}

// Registry returns the metrics registry (nil on a nil Observatory).
func (o *Observatory) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Transport returns the transport metric set, shared by every node's
// TCP stream machinery.
func (o *Observatory) Transport() *TransportMetrics {
	if o == nil {
		return nil
	}
	return o.trans
}

// layerCounter returns the per-(kind, layer) byte counter, created
// lazily on first traffic so the registry only lists layers that
// exist. The hot path is one atomic pointer load.
func (o *Observatory) layerCounter(kind comm.Kind, layer int) *Counter {
	k := int(kind)
	if k < 0 || k >= len(o.layerBytes) {
		k = 0
	}
	if layer < 0 || layer > maxLayerMetric {
		layer = maxLayerMetric
	}
	if c := o.layerBytes[k][layer].Load(); c != nil {
		return c
	}
	return o.makeLayerCounter(k, layer)
}

// makeLayerCounter is layerCounter's slow path: it registers the
// counter on the first span of a (kind, layer) pair and is never taken
// again for it, so the name formatting and registry insertion are
// one-time costs.
//
//kylix:coldpath
func (o *Observatory) makeLayerCounter(k, layer int) *Counter {
	c := o.reg.Counter(fmt.Sprintf("bytes_%s_L%d", comm.Kind(k), layer))
	o.layerBytes[k][layer].CompareAndSwap(nil, c)
	return o.layerBytes[k][layer].Load()
}

// RecvObserver returns rank's receive hook for transports (nil on a
// nil Observatory, which transports treat as "no observation").
func (o *Observatory) RecvObserver(rank int) comm.RecvObserver {
	if o == nil {
		return nil
	}
	return &recvObserver{o: o, tr: o.Node(rank)}
}

// recvObserver implements comm.RecvObserver for one node: byte/message
// counters, wait-time histograms, and error spans for timed-out
// receives (the TimeoutError propagation contract).
type recvObserver struct {
	o  *Observatory
	tr *Tracer
}

// ObserveRecv records one delivery: counters and wait histogram on
// success, timeout accounting and an error span on failure.
//
//kylix:hotpath
func (r *recvObserver) ObserveRecv(from int, tag comm.Tag, bytes int, wait time.Duration, err error) {
	o := r.o
	if err == nil {
		o.recvMsgs.Inc()
		o.recvBytes.Add(int64(bytes))
		if wait > 0 {
			o.recvWait.Observe(int64(wait))
		}
		return
	}
	if errors.Is(err, comm.ErrTimeout) {
		o.recvTimeouts.Inc()
		r.tr.RecordError(tag.Kind(), tag.Layer(), wait, err)
	}
}

// ObserveRecvGroup records the wait of one group receive.
//
//kylix:hotpath
func (r *recvObserver) ObserveRecvGroup(tag comm.Tag, wait time.Duration) {
	if wait > 0 {
		r.o.groupWait.Observe(int64(wait))
	}
}

// FaultObserver returns the hook the fault fabric calls once per
// injected fault: it bumps the per-event counter and drops an instant
// event on the faulty rank's timeline.
func (o *Observatory) FaultObserver() func(rank int, event string) {
	if o == nil {
		return nil
	}
	return func(rank int, event string) {
		if c := o.faultCounts[event]; c != nil {
			c.Inc()
		} else {
			o.reg.Counter("fault_" + event).Inc()
		}
		o.Node(rank).Instant(event)
	}
}

// Spans returns every buffered span across all nodes, sorted by start
// time. The result is a copy; tracing continues unaffected.
func (o *Observatory) Spans() []Span {
	if o == nil {
		return nil
	}
	var out []Span
	for _, t := range o.tracers {
		out = t.spans(out)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}
