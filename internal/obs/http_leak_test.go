package obs

import (
	"io"
	"net/http"
	"testing"

	"kylix/internal/leakcheck"
)

// TestServerCloseJoinsServeGoroutine is the regression test for the
// metrics endpoint's acceptor: Close must not return while the serve
// goroutine is still alive, so close-then-relisten on the same address
// never races the old acceptor.
func TestServerCloseJoinsServeGoroutine(t *testing.T) {
	defer leakcheck.Check(t)()
	o := New(2, 0)
	o.Registry().Counter("reduce_rounds").Inc()

	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Drop the client's keep-alive connection so its transport
	// goroutines wind down with the server's.
	http.DefaultClient.CloseIdleConnections()
}
