package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kylix/internal/comm"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.SetMax(3) // lower: must not move the watermark
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after SetMax(3) = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after SetMax(11) = %d, want 11", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	// Log2 buckets: the quantile is an upper bound within a factor of 2.
	if p50 := h.Quantile(0.5); p50 < 500 || p50 > 1024 {
		t.Fatalf("p50 = %d, want in [500, 1024]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 990 || p99 > 2048 {
		t.Fatalf("p99 = %d, want in [990, 2048]", p99)
	}
	h.Observe(-5) // clamps to zero, must not panic or skew the sum
	if h.Sum() != 1000*1001/2 {
		t.Fatalf("sum = %d, want %d", h.Sum(), 1000*1001/2)
	}
}

func TestNilRegistryYieldsLiveMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter is not live")
	}
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(9)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestRegistryGetOrCreateAndJSON(t *testing.T) {
	r := NewRegistry()
	if r.Counter("hits") != r.Counter("hits") {
		t.Fatal("same name must return the same counter")
	}
	r.Counter("hits").Add(5)
	r.Gauge("depth").Set(2)
	r.Histogram("wait").Observe(100)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if snap.Counters["hits"] != 5 || snap.Gauges["depth"] != 2 || snap.Histograms["wait"].Count != 1 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	if !strings.Contains(r.String(), "hits") {
		t.Fatal("String() missing registered metric")
	}
}

func TestSpanRingWrapCountsDrops(t *testing.T) {
	o := New(1, 4)
	tr := o.Node(0)
	for i := 0; i < 10; i++ {
		sp := tr.Begin(comm.KindReduce, i)
		tr.End(&sp)
	}
	spans := o.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring of 4 holds %d spans", len(spans))
	}
	// Oldest-first: the survivors are the last four spans recorded.
	for i, sp := range spans {
		if sp.Layer != 6+i {
			t.Fatalf("span %d layer = %d, want %d (oldest-first order)", i, sp.Layer, 6+i)
		}
	}
	if got := o.Registry().Counter("spans_dropped").Value(); got != 6 {
		t.Fatalf("spans_dropped = %d, want 6", got)
	}
}

func TestNilObservatoryAndTracerAreNoOps(t *testing.T) {
	var o *Observatory
	if o.Machines() != 0 || o.Node(0) != nil || o.Registry() != nil ||
		o.Transport() != nil || o.RecvObserver(0) != nil || o.FaultObserver() != nil {
		t.Fatal("nil Observatory accessors must return zero values")
	}
	if o.Spans() != nil {
		t.Fatal("nil Observatory Spans must be nil")
	}
	if err := o.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil Observatory WriteChromeTrace must error")
	}
	var tr *Tracer
	sp := tr.Begin(comm.KindReduce, 1)
	sp.BytesOut = 100
	tr.End(&sp)
	tr.Instant("kill")
	tr.CountRound()
	tr.CountArenaFlip()
	tr.RecordError(comm.KindReduce, 1, time.Second, errors.New("x"))
}

func TestLayerByteCountersFromSpans(t *testing.T) {
	o := New(2, 0)
	tr := o.Node(1)
	sp := tr.Begin(comm.KindReduce, 2)
	sp.BytesOut = 1234
	tr.End(&sp)
	if got := o.Registry().Counter("bytes_reduce_L2").Value(); got != 1234 {
		t.Fatalf("bytes_reduce_L2 = %d, want 1234", got)
	}
	// Whole-pass spans (layer 0) with no bytes must not create counters.
	outer := tr.Begin(comm.KindReduce, 0)
	tr.End(&outer)
	if _, ok := o.Registry().Snapshot().Counters["bytes_reduce_L0"]; ok {
		t.Fatal("zero-byte L0 span must not register a byte counter")
	}
}

func TestRecvObserverCountsSuccessAndTimeout(t *testing.T) {
	o := New(2, 0)
	ro := o.RecvObserver(0)
	tag := comm.MakeTag(comm.KindReduce, 3, 7)
	ro.ObserveRecv(1, tag, 256, 2*time.Millisecond, nil)
	ro.ObserveRecvGroup(tag, time.Millisecond)
	reg := o.Registry()
	if reg.Counter("recv_msgs").Value() != 1 || reg.Counter("recv_bytes").Value() != 256 {
		t.Fatal("success receive not counted")
	}
	if reg.Histogram("recv_wait_ns").Count() != 1 || reg.Histogram("recv_group_wait_ns").Count() != 1 {
		t.Fatal("wait histograms not fed")
	}

	terr := &comm.TimeoutError{Tag: tag, From: []int{1}, Elapsed: 50 * time.Millisecond}
	ro.ObserveRecv(1, tag, 0, terr.Elapsed, terr)
	if reg.Counter("recv_timeouts").Value() != 1 {
		t.Fatal("timeout not counted")
	}
	var errSpan *Span
	for _, sp := range o.Spans() {
		if sp.Err != nil {
			s := sp
			errSpan = &s
		}
	}
	if errSpan == nil {
		t.Fatal("timed-out receive left no error span")
	}
	if !errors.Is(errSpan.Err, comm.ErrTimeout) {
		t.Fatalf("error span holds %v, want a comm.ErrTimeout", errSpan.Err)
	}
	if errSpan.Kind != comm.KindReduce || errSpan.Layer != 3 || errSpan.Node != 0 {
		t.Fatalf("error span misattributed: %+v", errSpan)
	}
	if errSpan.Duration() < 50*time.Millisecond {
		t.Fatalf("error span covers %v, want >= the 50ms wait", errSpan.Duration())
	}

	// Non-timeout errors (e.g. closed transport) are not error spans.
	ro.ObserveRecv(-1, tag, 0, 0, errors.New("closed"))
	if reg.Counter("recv_timeouts").Value() != 1 {
		t.Fatal("non-timeout error counted as timeout")
	}
}

func TestFaultObserverCountsAndMarks(t *testing.T) {
	o := New(4, 0)
	fo := o.FaultObserver()
	fo(2, "drop")
	fo(2, "drop")
	fo(3, "kill")
	fo(1, "custom-event") // unknown events get a lazily created counter
	reg := o.Registry()
	if reg.Counter("fault_drop").Value() != 2 || reg.Counter("fault_kill").Value() != 1 ||
		reg.Counter("fault_custom-event").Value() != 1 {
		t.Fatalf("fault counters wrong: %s", reg.String())
	}
	var instants int
	for _, sp := range o.Spans() {
		if sp.Event != "" {
			instants++
		}
	}
	if instants != 4 {
		t.Fatalf("instant events = %d, want 4", instants)
	}
}

// populate runs a tiny synthetic trace: per-layer spans with shrinking
// byte volumes plus one fault event, on every node.
func populate(o *Observatory) {
	for node := 0; node < o.Machines(); node++ {
		tr := o.Node(node)
		outer := tr.Begin(comm.KindReduce, 0)
		for layer := 1; layer <= 3; layer++ {
			sp := tr.Begin(comm.KindReduce, layer)
			sp.BytesOut = int64(1000 >> layer)
			sp.BytesIn = sp.BytesOut
			sp.Peers = 4
			tr.End(&sp)
		}
		tr.End(&outer)
	}
	o.Node(0).Instant("drop")
}

func TestChromeTraceIsValidAndComplete(t *testing.T) {
	o := New(3, 0)
	populate(o)
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	var sawFault, sawLayer bool
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
		if ev.Ph == "i" && strings.HasPrefix(ev.Name, "fault:") {
			sawFault = true
		}
		if ev.Ph == "X" && ev.Name == "reduce L2" {
			sawLayer = true
			if ev.Args["bytes_out"].(float64) != 250 {
				t.Fatalf("reduce L2 bytes_out = %v, want 250", ev.Args["bytes_out"])
			}
		}
	}
	if counts["M"] != 3 {
		t.Fatalf("want one process_name metadata event per node, got %d", counts["M"])
	}
	if counts["X"] != 3*4 {
		t.Fatalf("want 12 complete events (3 nodes x (1 outer + 3 layers)), got %d", counts["X"])
	}
	if !sawFault || !sawLayer {
		t.Fatalf("missing fault instant (%v) or layer slice (%v)", sawFault, sawLayer)
	}
}

func TestTimelineShowsShrinkingLayers(t *testing.T) {
	o := New(3, 0)
	populate(o)
	var buf bytes.Buffer
	if err := o.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reduce L1", "reduce L2", "reduce L3", "fault events: 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	o := New(2, 0)
	populate(o)
	o.Registry().Counter("reduce_rounds").Inc()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["reduce_rounds"] != 1 {
		t.Fatalf("/metrics reduce_rounds = %d", snap.Counters["reduce_rounds"])
	}
	var doc map[string]any
	if err := json.Unmarshal(get("/trace"), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if !strings.Contains(string(get("/timeline")), "reduce L1") {
		t.Fatal("/timeline missing layer rows")
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	o := New(1, 0)
	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", s.Addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var nilServer *Server
	if err := nilServer.Close(); err != nil {
		t.Fatal("nil server Close must be a no-op")
	}
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil Observatory) must error")
	}
}

// TestConcurrentRecordingIsRaceFree hammers every concurrent entry
// point at once; run under -race it proves the recording primitives
// synchronize correctly.
func TestConcurrentRecordingIsRaceFree(t *testing.T) {
	o := New(4, 64)
	var wg sync.WaitGroup
	for node := 0; node < 4; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			tr := o.Node(node)
			ro := o.RecvObserver(node)
			tag := comm.MakeTag(comm.KindReduce, 1, 0)
			for i := 0; i < 500; i++ {
				sp := tr.Begin(comm.KindReduce, 1)
				sp.BytesOut = 10
				tr.End(&sp)
				ro.ObserveRecv(0, tag, 10, time.Microsecond, nil)
				o.Transport().DedupHits.Inc()
			}
		}(node)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = o.Spans()
			_ = o.Registry().Snapshot()
		}
	}()
	wg.Wait()
	if got := o.Registry().Counter("bytes_reduce_L1").Value(); got != 4*500*10 {
		t.Fatalf("bytes_reduce_L1 = %d, want %d", got, 4*500*10)
	}
}
