package obs

import (
	"sync"
	"time"

	"kylix/internal/comm"
)

// Span is one timed slice of protocol work on one machine: a whole
// config/reduce/gather pass (Layer 0) or a single communication layer
// within it (Layer >= 1). Instant fault events reuse the type with a
// non-empty Event and Start == End. Timestamps are nanoseconds since
// the Observatory's monotonic epoch, so spans from different nodes of
// one cluster share a timeline.
type Span struct {
	// Node is the machine the span ran on.
	Node int
	// Kind is the protocol phase (config, reduce, gather, ...).
	Kind comm.Kind
	// Layer is the communication layer, or 0 for a whole-pass span.
	Layer int
	// Start and End are nanoseconds since the Observatory epoch.
	Start, End int64
	// BytesOut and BytesIn are the wire volumes the span sent and
	// consumed (self-sends included, the Figure 5 convention).
	BytesOut, BytesIn int64
	// Peers is the communication group size of the span's layer.
	Peers int
	// Err is non-nil when the pass failed; a timed-out receive closes
	// its span with the *comm.TimeoutError attached.
	Err error
	// Event names an instant event ("drop", "kill", ...); empty for
	// phase spans.
	Event string
}

// Duration is the span's elapsed time.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Tracer records spans for one machine into a preallocated ring. A nil
// Tracer is a valid no-op: Begin returns a zero Span and End discards
// it, so instrumented hot paths cost two nil checks when observability
// is off. With observability on, a span costs two monotonic clock
// reads, one short mutex hold and a ring write — no allocation.
type Tracer struct {
	o    *Observatory
	node int

	mu    sync.Mutex
	ring  []Span
	next  int
	total int64 // spans recorded ever; total - len(ring) overwritten
}

// Begin opens a span. The caller fills BytesIn/BytesOut/Peers/Err and
// hands the span back to End.
//
//kylix:hotpath
func (t *Tracer) Begin(kind comm.Kind, layer int) Span {
	if t == nil {
		return Span{}
	}
	return Span{Node: t.node, Kind: kind, Layer: layer, Start: t.o.now()}
}

// End stamps the span's end time and records it.
//
//kylix:hotpath
func (t *Tracer) End(sp *Span) {
	if t == nil {
		return
	}
	sp.End = t.o.now()
	t.record(*sp)
}

// Instant records a zero-duration event (fault injections, kills).
func (t *Tracer) Instant(event string) {
	if t == nil {
		return
	}
	now := t.o.now()
	t.record(Span{Node: t.node, Event: event, Start: now, End: now})
}

// CountRound bumps the cluster-wide reduce-round counter.
func (t *Tracer) CountRound() {
	if t != nil {
		t.o.rounds.Inc()
	}
}

// CountArenaFlip bumps the scratch-arena generation counter.
func (t *Tracer) CountArenaFlip() {
	if t != nil {
		t.o.arenaFlips.Inc()
	}
}

// CountCombineShards accounts one combine/gather kernel dispatch that
// was sharded across the worker pool: shards is the shard count the
// kernel ran with. Serial runs (shards <= 1) are not counted — the
// metric reads as "how much work the Fig 7 threading actually took",
// staying zero on single-worker machines.
//
//kylix:hotpath
func (t *Tracer) CountCombineShards(shards int) {
	if t != nil && shards > 1 {
		t.o.combineShards.Add(int64(shards))
	}
}

// Enabled reports whether spans are actually recorded. Hot paths whose
// instrumentation itself has a cost beyond filling a Span — the config
// pass would run the index codec just to know its wire sizes — gate
// that work on Enabled rather than paying it for a discarded span.
func (t *Tracer) Enabled() bool { return t != nil }

// CountConfigBytes accounts one configuration payload: its compressed
// wire size and what the raw 8-byte-per-key format would have cost.
func (t *Tracer) CountConfigBytes(rawBytes, encBytes int64) {
	if t != nil {
		t.o.configBytesRaw.Add(rawBytes)
		t.o.configBytesEnc.Add(encBytes)
	}
}

// CountValueBytes accounts one reduce/gather value block: its actual
// wire size and what the raw 4-byte-per-float32 encoding would have
// cost. With quantization off the two are equal, so the encoded/raw
// ratio reads directly as the value codec's wire compression.
//
//kylix:hotpath
func (t *Tracer) CountValueBytes(rawBytes, encBytes int64) {
	if t != nil {
		t.o.valuesBytesRaw.Add(rawBytes)
		t.o.valuesBytesEnc.Add(encBytes)
	}
}

// CountReconfigureLayer records one layer outcome of an incremental
// reconfiguration: fast when the layer reused its previous unions and
// position maps, full when it had to recompute them.
func (t *Tracer) CountReconfigureLayer(fast bool) {
	if t == nil {
		return
	}
	if fast {
		t.o.reconfigFastLayer.Inc()
	} else {
		t.o.reconfigFullLayer.Inc()
	}
}

// RecordError closes a synthetic span carrying an error that was not
// bracketed by Begin/End (e.g. a timed-out receive observed at the
// transport): the span covers the wait that failed.
func (t *Tracer) RecordError(kind comm.Kind, layer int, wait time.Duration, err error) {
	if t == nil {
		return
	}
	now := t.o.now()
	t.record(Span{Node: t.node, Kind: kind, Layer: layer, Start: now - int64(wait), End: now, Err: err})
}

//
//kylix:hotpath
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if len(t.ring) == 0 {
		t.mu.Unlock()
		return
	}
	if t.total >= int64(len(t.ring)) {
		t.o.spansDropped.Inc()
	}
	t.ring[t.next] = sp
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
	if sp.Event == "" && sp.BytesOut > 0 {
		t.o.layerCounter(sp.Kind, sp.Layer).Add(sp.BytesOut)
	}
}

// spans appends the tracer's buffered spans, oldest first.
func (t *Tracer) spans(out []Span) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int(t.total)
	if n > len(t.ring) {
		n = len(t.ring)
	}
	start := (t.next - n + len(t.ring)) % len(t.ring)
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}
