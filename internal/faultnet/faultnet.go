// Package faultnet is a deterministic chaos layer for comm endpoints:
// it wraps any transport (memnet or tcpnet) and injects message drops,
// delays, duplicates, per-link reorders, crash-stop kills at arbitrary
// points mid-round, and rank-set partitions, all scripted by a seeded
// Plan. It exists to exercise the paper's §V fault-tolerance claim — a
// factor-s replicated butterfly completes through any failure pattern
// that leaves one live replica per group — under adversarial
// message-level faults, not just the gentle between-rounds machine
// kills of the original experiments.
//
// Determinism contract: every fault decision is a pure function of
// (Plan.Seed, sender, receiver, tag) plus the sender's own send count
// (for kills and partition windows). No wall clock ever participates in
// a decision — wall clock only paces delivery of messages already
// decided to be delayed — so the same seed and schedule produce the
// same per-link delivered message sequence on every run, on every
// transport, and across processes (each process derives identical
// decisions from the shared seed).
package faultnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"kylix/internal/comm"
)

// Plan scripts a fault schedule. The zero value (plus a Seed) injects
// nothing and is useful as a pure send-counting probe.
type Plan struct {
	// Seed drives every probabilistic decision. Two fabrics with the
	// same Seed and schedule make identical choices.
	Seed int64
	// Faulty lists the physical ranks whose *outbound* messages are
	// subject to Drop/Duplicate/Delay/Reorder and which Kills may
	// target. Empty means every rank is fault-prone. Restricting Faulty
	// to at most one replica per group (e.g. the upper half of an s=2
	// cluster) keeps the schedule inside the §V survivable regime:
	// every receiver still gets the clean replica's copy.
	Faulty []int
	// Drop is the per-message probability that a message from a faulty
	// sender vanishes (like a packet into a dead host).
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	// Duplicates are idempotent for the protocol: receives match one
	// message per (sender, tag) and surplus copies are inert.
	Duplicate float64
	// Delay is the probability a message is held for a random duration
	// in (0, MaxDelay] before delivery. Delivery stays FIFO per
	// (sender, receiver) link — delay models link latency, it never
	// reorders a link on its own.
	Delay float64
	// MaxDelay bounds injected delays. The duration is derived from the
	// seeded stream (deterministic); only the sleep itself uses wall
	// clock.
	MaxDelay time.Duration
	// Reorder is the probability a message is held back and delivered
	// immediately after the *next* message on the same link (a
	// deterministic adjacent swap).
	Reorder float64
	// Kills schedules crash-stop failures by the victim's own send
	// count, which lands the crash at a precise, reproducible point
	// mid-round.
	Kills []Kill
	// Partitions schedules rank-set partitions windowed by the sender's
	// send count.
	Partitions []Partition
}

// Kill crash-stops Rank after it has completed exactly AfterSends
// sends: the (AfterSends+1)-th send fails with comm.ErrClosed and the
// machine is dead from then on (receives fail, inbound traffic drops).
type Kill struct {
	Rank       int
	AfterSends int
}

// Partition separates rank groups: while active, a message whose
// sender and receiver fall in different Groups is silently dropped.
// Ranks listed in no group are unaffected. The partition is active
// while the sender's send count is in [From, Until); Until <= 0 means
// forever. Counting on the sender keeps activation deterministic
// without a global clock.
type Partition struct {
	Groups [][]int
	From   int
	Until  int
}

func (pt *Partition) active(count int64) bool {
	if count <= int64(pt.From) {
		return false
	}
	return pt.Until <= 0 || count <= int64(pt.Until)
}

func (pt *Partition) separates(from, to int) bool {
	gf, gt := -1, -1
	for g, ranks := range pt.Groups {
		for _, r := range ranks {
			if r == from {
				gf = g
			}
			if r == to {
				gt = g
			}
		}
	}
	return gf >= 0 && gt >= 0 && gf != gt
}

// Validate checks the plan's parameters.
func (p *Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"Drop", p.Drop}, {"Duplicate", p.Duplicate}, {"Delay", p.Delay}, {"Reorder", p.Reorder}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faultnet: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faultnet: negative MaxDelay %v", p.MaxDelay)
	}
	if p.Delay > 0 && p.MaxDelay == 0 {
		return fmt.Errorf("faultnet: Delay %v needs a positive MaxDelay", p.Delay)
	}
	for _, k := range p.Kills {
		if k.Rank < 0 || k.AfterSends < 0 {
			return fmt.Errorf("faultnet: invalid kill %+v", k)
		}
	}
	return nil
}

// Fabric is the shared fault controller for one cluster: every
// machine's endpoint is wrapped by the same Fabric (in-process) or by a
// Fabric built from the same Plan (cross-process — decisions are
// seed-derived, so independent fabrics agree). It tracks kills,
// partitions and per-rank send counts, and owns the delayed-delivery
// machinery.
type Fabric struct {
	plan   Plan
	faulty map[int]bool // nil = all ranks fault-prone

	sizeOnce sync.Once
	size     int
	killed   []atomic.Bool
	sends    []atomic.Int64
	killsFor [][]Kill // per-rank kill schedule
	// killKind[rank] holds an armed one-shot protocol-step kill: the
	// value is comm.Kind+1 (0 = unarmed), and the rank crash-stops on
	// its next send of that kind. See KillOnKind.
	killKind []atomic.Int32

	mu      sync.Mutex
	eps     []comm.Endpoint // underlying endpoint per rank (closed on Kill)
	links   map[linkKey]*link
	manual  [][]int // manual partition groups (Partition/Heal)
	flushed chan struct{}
	closed  bool

	wg sync.WaitGroup // live link drainers

	stats struct {
		dropped, duplicated, delayed, reordered, partitioned atomic.Int64
	}

	// observer, when set, is called once per injected fault with the
	// affected rank (the sender for link faults, the victim for kills)
	// and the event name. Guarded by obsMu; called outside all locks.
	obsMu    sync.Mutex
	observer func(rank int, event string)
}

// SetObserver installs the fault-event hook (the observability layer's
// timeline feed). Pass nil to detach.
func (f *Fabric) SetObserver(fn func(rank int, event string)) {
	f.obsMu.Lock()
	f.observer = fn
	f.obsMu.Unlock()
}

// notify reports one injected fault to the observer, if any.
func (f *Fabric) notify(rank int, event string) {
	f.obsMu.Lock()
	fn := f.observer
	f.obsMu.Unlock()
	if fn != nil {
		fn(rank, event)
	}
}

// Stats counts the faults injected so far, so tests can assert the
// chaos actually engaged (a soak that passes because nothing fired
// proves nothing).
type Stats struct {
	Dropped, Duplicated, Delayed, Reordered, Partitioned int64
}

// Stats returns a snapshot of the injected-fault counters.
func (f *Fabric) Stats() Stats {
	return Stats{
		Dropped:     f.stats.dropped.Load(),
		Duplicated:  f.stats.duplicated.Load(),
		Delayed:     f.stats.delayed.Load(),
		Reordered:   f.stats.reordered.Load(),
		Partitioned: f.stats.partitioned.Load(),
	}
}

type linkKey struct{ from, to int }

// link carries the in-flight state of one (sender, receiver) stream:
// a FIFO of decided deliveries and at most one held-back (reordered)
// message. All fields are guarded by Fabric.mu.
type link struct {
	queue   []delivery
	running bool
	held    *delivery
}

type delivery struct {
	to    int
	tag   comm.Tag
	p     comm.Payload
	delay time.Duration
}

// New builds a Fabric from a plan.
func New(plan Plan) (*Fabric, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		plan:    plan,
		links:   make(map[linkKey]*link),
		flushed: make(chan struct{}),
	}
	if len(plan.Faulty) > 0 {
		f.faulty = make(map[int]bool, len(plan.Faulty))
		for _, r := range plan.Faulty {
			f.faulty[r] = true
		}
	}
	return f, nil
}

// Wrap interposes the fabric between the caller and ep. All endpoints
// of one cluster must be wrapped by fabrics sharing the same plan.
func (f *Fabric) Wrap(ep comm.Endpoint) comm.Endpoint {
	f.InitSize(ep.Size())
	rank := ep.Rank()
	f.mu.Lock()
	f.eps[rank] = ep
	f.mu.Unlock()
	return &endpoint{f: f, ep: ep, rank: rank}
}

// InitSize pre-sizes the fabric for an m-machine cluster so Kill and
// Sends work before the first Wrap. Wrap calls it automatically; later
// calls must agree on the size.
func (f *Fabric) InitSize(size int) {
	f.sizeOnce.Do(func() {
		f.size = size
		f.killed = make([]atomic.Bool, size)
		f.sends = make([]atomic.Int64, size)
		f.killsFor = make([][]Kill, size)
		f.killKind = make([]atomic.Int32, size)
		for _, k := range f.plan.Kills {
			if k.Rank < size {
				f.killsFor[k.Rank] = append(f.killsFor[k.Rank], k)
			}
		}
		f.mu.Lock()
		f.eps = make([]comm.Endpoint, size)
		f.mu.Unlock()
	})
	if size != f.size {
		panic(fmt.Sprintf("faultnet: endpoint size %d, fabric sized for %d", size, f.size))
	}
}

// Kill crash-stops a machine now: its endpoint operations fail, its
// blocked receives unblock with comm.ErrClosed (the underlying
// endpoint is closed), and messages addressed to it vanish.
func (f *Fabric) Kill(rank int) {
	if f.killed == nil || rank < 0 || rank >= f.size {
		return
	}
	if !f.killed[rank].CompareAndSwap(false, true) {
		return
	}
	f.notify(rank, "kill")
	f.mu.Lock()
	ep := f.eps[rank]
	f.mu.Unlock()
	if ep != nil {
		_ = ep.Close()
	}
}

// KillOnKind arms a one-shot protocol-step kill: the rank crash-stops
// at its next send of a message of the given kind (the send fails with
// comm.ErrClosed). Unlike the send-count Kills of the plan, the trigger
// is a protocol step, not a logical clock — which is how chaos suites
// land a crash exactly when a membership coordinator broadcasts its
// next control message mid-transition, independent of how many
// heartbeats it sent before. Arming again replaces a pending trigger;
// arming for a dead or out-of-range rank is a no-op.
func (f *Fabric) KillOnKind(rank int, kind comm.Kind) {
	if f.killKind == nil || rank < 0 || rank >= f.size {
		return
	}
	f.killKind[rank].Store(int32(kind) + 1)
}

// Killed reports whether a machine has crash-stopped (manually or by a
// scheduled Kill).
func (f *Fabric) Killed(rank int) bool {
	return f.killed != nil && rank >= 0 && rank < f.size && f.killed[rank].Load()
}

// Sends reports how many sends rank has attempted (the logical clock
// that Kills and Partition windows are scheduled against).
func (f *Fabric) Sends(rank int) int64 {
	if f.sends == nil || rank < 0 || rank >= f.size {
		return 0
	}
	return f.sends[rank].Load()
}

// Partition imposes a manual partition (in addition to any scheduled
// ones): ranks in different groups stop hearing each other until Heal.
func (f *Fabric) Partition(groups ...[]int) {
	f.mu.Lock()
	f.manual = groups
	f.mu.Unlock()
}

// Heal lifts a manual partition.
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.manual = nil
	f.mu.Unlock()
}

// Flush releases every held-back message and cancels pending delay
// sleeps, then waits for the in-flight deliveries to reach the
// underlying transport. Call it between rounds (or before close) so no
// decided-but-undelivered message is stranded.
func (f *Fabric) Flush() {
	f.mu.Lock()
	for k, l := range f.links {
		if l.held != nil {
			d := *l.held
			l.held = nil
			l.queue = append(l.queue, d)
			f.startLocked(k, l)
		}
	}
	close(f.flushed) // cancel in-flight delay sleeps
	f.flushed = make(chan struct{})
	f.mu.Unlock()
	f.wg.Wait()
}

// Close flushes and shuts the fabric down. Underlying endpoints are not
// closed (except those of killed machines, already closed at kill
// time); the caller owns its transports.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.Flush()
}

// ---- decision core ----

type action struct {
	drop    bool
	copies  int
	delay   time.Duration
	reorder bool
}

// decide is the pure fault-decision function: (seed, from, to, tag) ->
// action, via a seeded rand.Rand per message. It never reads clocks or
// mutable state, which is what makes schedules replayable.
//
//kylix:deterministic
func (f *Fabric) decide(from, to int, tag comm.Tag) action {
	a := action{copies: 1}
	p := &f.plan
	if f.faulty != nil && !f.faulty[from] {
		return a
	}
	if p.Drop == 0 && p.Duplicate == 0 && p.Delay == 0 && p.Reorder == 0 {
		return a
	}
	rng := rand.New(rand.NewSource(int64(mix(uint64(p.Seed), uint64(from), uint64(to), uint64(tag)))))
	if rng.Float64() < p.Drop {
		a.drop = true
		return a
	}
	if rng.Float64() < p.Duplicate {
		a.copies = 2
	}
	if rng.Float64() < p.Delay {
		a.delay = time.Duration(1 + rng.Int63n(int64(p.MaxDelay)))
	}
	if rng.Float64() < p.Reorder {
		a.reorder = true
	}
	return a
}

// mix is a splitmix64-style combiner giving a well-scrambled stream
// seed per (seed, from, to, tag).
func mix(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

func (f *Fabric) partitioned(from, to int, count int64) bool {
	for i := range f.plan.Partitions {
		pt := &f.plan.Partitions[i]
		if pt.active(count) && pt.separates(from, to) {
			return true
		}
	}
	f.mu.Lock()
	manual := f.manual
	f.mu.Unlock()
	if manual != nil {
		pt := Partition{Groups: manual}
		return pt.separates(from, to)
	}
	return false
}

// ---- delivery machinery ----

// enqueue hands a decided message to the link, preserving per-link FIFO
// order (delays pace the drainer; they never overtake). A reordered
// message is parked until the link's next message pushes it out.
func (f *Fabric) enqueue(from, to int, tag comm.Tag, p comm.Payload, act action) {
	k := linkKey{from, to}
	f.mu.Lock()
	l := f.links[k]
	if l == nil {
		l = &link{}
		f.links[k] = l
	}
	d := delivery{to: to, tag: tag, p: p, delay: act.delay}
	if act.reorder && l.held == nil && !f.closed {
		// Park until the link's next message (or a Flush) pushes it out:
		// a deterministic adjacent swap, never an unbounded hold.
		l.held = &d
		f.mu.Unlock()
		return
	}
	for c := 0; c < act.copies; c++ {
		l.queue = append(l.queue, d)
	}
	if l.held != nil {
		held := *l.held
		l.held = nil
		l.queue = append(l.queue, held)
	}
	f.startLocked(k, l)
	f.mu.Unlock()
}

// startLocked launches the link drainer if idle. Caller holds f.mu.
//
//kylix:owned
func (f *Fabric) startLocked(k linkKey, l *link) {
	if l.running || len(l.queue) == 0 {
		return
	}
	l.running = true
	f.wg.Add(1)
	go f.drain(k, l)
}

// drain delivers a link's queue in FIFO order, sleeping each message's
// decided delay (cut short by Flush/Close). Underlying send errors are
// swallowed like any async transport fault — the protocol's receive
// timeouts and replication mask them.
func (f *Fabric) drain(k linkKey, l *link) {
	defer f.wg.Done()
	for {
		f.mu.Lock()
		if len(l.queue) == 0 {
			l.running = false
			f.mu.Unlock()
			return
		}
		d := l.queue[0]
		l.queue = l.queue[1:]
		flushed := f.flushed
		closed := f.closed
		ep := f.eps[k.from]
		f.mu.Unlock()
		if d.delay > 0 && !closed {
			select {
			case <-time.After(d.delay):
			case <-flushed:
			}
		}
		if ep != nil {
			_ = ep.Send(d.to, d.tag, d.p)
		}
	}
}

// ---- wrapped endpoint ----

type endpoint struct {
	f    *Fabric
	ep   comm.Endpoint
	rank int
}

func (e *endpoint) Rank() int { return e.ep.Rank() }
func (e *endpoint) Size() int { return e.ep.Size() }

// Send applies the fault schedule to one message. A crash-stopped
// sender fails with comm.ErrClosed; dropped, partitioned and
// dead-destination messages vanish silently (a send into a dead host
// never errors — the §V design needs survivors to keep streaming).
func (e *endpoint) Send(to int, tag comm.Tag, p comm.Payload) error {
	f := e.f
	if f.killed[e.rank].Load() {
		return comm.ErrClosed
	}
	count := f.sends[e.rank].Add(1)
	for _, k := range f.killsFor[e.rank] {
		if count > int64(k.AfterSends) {
			f.Kill(e.rank)
			return comm.ErrClosed
		}
	}
	if kk := f.killKind[e.rank].Load(); kk != 0 && tag.Kind() == comm.Kind(kk-1) {
		if f.killKind[e.rank].CompareAndSwap(kk, 0) {
			f.Kill(e.rank)
			return comm.ErrClosed
		}
	}
	if to < 0 || to >= f.size {
		return e.ep.Send(to, tag, p) // surface the transport's own range error
	}
	if f.killed[to].Load() {
		return nil
	}
	if f.partitioned(e.rank, to, count) {
		f.stats.partitioned.Add(1)
		f.notify(e.rank, "partition")
		return nil
	}
	act := f.decide(e.rank, to, tag)
	if act.drop {
		f.stats.dropped.Add(1)
		f.notify(e.rank, "drop")
		return nil
	}
	if act.copies > 1 {
		f.stats.duplicated.Add(1)
		f.notify(e.rank, "duplicate")
	}
	if act.delay > 0 {
		f.stats.delayed.Add(1)
		f.notify(e.rank, "delay")
	}
	if act.reorder {
		f.stats.reordered.Add(1)
		f.notify(e.rank, "reorder")
	}
	if act.copies == 1 && act.delay == 0 && !act.reorder {
		// Fast path: nothing pending on this link means synchronous
		// delivery cannot overtake anything.
		f.mu.Lock()
		l := f.links[linkKey{e.rank, to}]
		idle := l == nil || (!l.running && len(l.queue) == 0 && l.held == nil)
		f.mu.Unlock()
		if idle {
			return e.ep.Send(to, tag, p)
		}
	}
	f.enqueue(e.rank, to, tag, p, act)
	return nil
}

func (e *endpoint) Recv(from int, tag comm.Tag) (comm.Payload, error) {
	if e.f.killed[e.rank].Load() {
		return nil, comm.ErrClosed
	}
	return e.ep.Recv(from, tag)
}

func (e *endpoint) RecvAny(froms []int, tag comm.Tag) (int, comm.Payload, error) {
	if e.f.killed[e.rank].Load() {
		return 0, nil, comm.ErrClosed
	}
	return e.ep.RecvAny(froms, tag)
}

func (e *endpoint) RecvGroup(groups [][]int, tag comm.Tag) (int, comm.Payload, error) {
	if e.f.killed[e.rank].Load() {
		return 0, nil, comm.ErrClosed
	}
	return e.ep.RecvGroup(groups, tag)
}

// Close flushes the fabric's in-flight deliveries (so a closing rank
// cannot strand messages it already decided to send) and closes the
// underlying endpoint.
func (e *endpoint) Close() error {
	e.f.Flush()
	return e.ep.Close()
}
