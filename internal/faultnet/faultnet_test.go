package faultnet

import (
	"errors"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/replica"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// soakCluster is the shared harness: an s=2 replicated 16-machine
// memnet cluster whose physical endpoints run through one fabric, with
// persistent core.Machines so rounds advance in lockstep.
type soakCluster struct {
	net      *memnet.Network
	fab      *Fabric
	machines []*core.Machine
	phys     int
	logical  int
}

func newSoakCluster(t *testing.T, plan Plan) *soakCluster {
	t.Helper()
	const phys, logical = 16, 8
	fab, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	bf := topo.MustNew([]int{4, 2})
	net := memnet.New(phys, memnet.WithRecvTimeout(10*time.Second))
	t.Cleanup(net.Close)
	machines := make([]*core.Machine, phys)
	for p := 0; p < phys; p++ {
		ep, err := replica.Wrap(fab.Wrap(net.Endpoint(p)), 2)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		machines[p] = m
	}
	return &soakCluster{net: net, fab: fab, machines: machines, phys: phys, logical: logical}
}

// round runs one configure+reduce on every machine; results indexed by
// physical rank (nil for crash-stopped machines). Logical rank q
// contributes q+1 to shared feature 0 and to a private feature.
func (c *soakCluster) round(t *testing.T) [][]float32 {
	t.Helper()
	results := make([][]float32, c.phys)
	err := memnet.Run(c.net, func(pep comm.Endpoint) error {
		p := pep.Rank()
		m := c.machines[p]
		q := p % c.logical
		in := sparse.MustNewSet([]int32{0})
		out := sparse.MustNewSet([]int32{0, int32(1000 + q)})
		cfg, err := m.Configure(in, out)
		if err != nil {
			if c.fab.Killed(p) {
				return nil // the injected crash-stop, not a failure
			}
			return err
		}
		vals := make([]float32, 2)
		pos, _ := out.Position(sparse.MakeKey(0))
		vals[pos] = float32(q + 1)
		res, err := cfg.Reduce(vals)
		if err != nil {
			if c.fab.Killed(p) {
				return nil
			}
			return err
		}
		results[p] = res
		return nil
	})
	if err != nil {
		t.Fatalf("round: %v", err)
	}
	return results
}

func (c *soakCluster) wantShared() float32 {
	w := float32(0)
	for q := 0; q < c.logical; q++ {
		w += float32(q + 1)
	}
	return w
}

func checkRound(t *testing.T, c *soakCluster, results [][]float32) {
	t.Helper()
	want := c.wantShared()
	live := 0
	for p, res := range results {
		if res == nil {
			continue
		}
		live++
		if res[0] != want {
			t.Fatalf("phys %d: shared sum %f, want %f", p, res[0], want)
		}
	}
	if live == 0 {
		t.Fatal("no live machine returned a result")
	}
}

var upperHalf = []int{8, 9, 10, 11, 12, 13, 14, 15}

// TestDropsDupsDelaysMasked: heavy message-level chaos confined to one
// replica half leaves every surviving rank's result exactly correct —
// the clean replica's copy always gets through.
func TestDropsDupsDelaysMasked(t *testing.T) {
	c := newSoakCluster(t, Plan{
		Seed:      11,
		Faulty:    upperHalf,
		Drop:      0.3,
		Duplicate: 0.3,
		Delay:     0.4,
		MaxDelay:  2 * time.Millisecond,
		Reorder:   0.15,
	})
	for round := 0; round < 3; round++ {
		checkRound(t, c, c.round(t))
	}
	st := c.fab.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 || st.Reordered == 0 {
		t.Fatalf("chaos never engaged: %+v", st)
	}
}

// TestKillAfterSendsMidScatter crash-stops a replica at a send count
// that lands inside the second round's scatter-reduce: the round (and
// the next) must still complete exactly on every survivor. This is the
// regime the between-rounds churn test never reached.
func TestKillAfterSendsMidScatter(t *testing.T) {
	// Probe pass: measure one round's per-rank send count fault-free.
	probe := newSoakCluster(t, Plan{Seed: 1})
	checkRound(t, probe, probe.round(t))
	perRound := probe.fab.Sends(9)
	if perRound == 0 {
		t.Fatal("probe measured no sends")
	}

	const victim = 9
	kill := Kill{Rank: victim, AfterSends: int(perRound + perRound/2)}
	c := newSoakCluster(t, Plan{Seed: 2, Kills: []Kill{kill}})

	checkRound(t, c, c.round(t)) // round 0: fault-free
	res := c.round(t)            // round 1: victim dies mid-scatter
	checkRound(t, c, res)
	if res[victim] != nil {
		t.Fatal("victim returned a result after its scheduled crash")
	}
	if !c.fab.Killed(victim) {
		t.Fatal("scheduled kill never fired")
	}
	if got := c.fab.Sends(victim); got != int64(kill.AfterSends)+1 {
		t.Fatalf("victim attempted %d sends, want crash on attempt %d", got, kill.AfterSends+1)
	}
	if got := c.fab.Sends(victim - 8); got <= int64(kill.AfterSends)+1 {
		t.Fatalf("kill did not land mid-round: victim stopped at %d sends but partner reached only %d", kill.AfterSends+1, got)
	}
	checkRound(t, c, c.round(t)) // round 2: cluster still healthy
}

// TestManualKillMidRoundUnblocksVictim: a manual Kill while the victim
// is blocked in a receive must fail the victim with ErrClosed (not hang
// to the timeout) and leave the survivors' round exact.
func TestManualKillMidRoundUnblocksVictim(t *testing.T) {
	c := newSoakCluster(t, Plan{Seed: 3})
	const victim = 12
	done := make(chan struct{})
	go func() {
		// Land the kill while the round is in flight.
		time.Sleep(2 * time.Millisecond)
		c.fab.Kill(victim)
		close(done)
	}()
	for round := 0; round < 3; round++ {
		res := c.round(t)
		checkRound(t, c, res)
	}
	<-done
	if !c.fab.Killed(victim) {
		t.Fatal("victim not marked killed")
	}
}

func sendTag(i uint32) comm.Tag { return comm.MakeTag(comm.KindApp, 0, i) }

// TestManualPartitionAndHeal: messages across a partition vanish;
// after Heal they flow again.
func TestManualPartitionAndHeal(t *testing.T) {
	fab, err := New(Plan{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	net := memnet.New(2, memnet.WithRecvTimeout(150*time.Millisecond))
	defer net.Close()
	a := fab.Wrap(net.Endpoint(0))
	b := fab.Wrap(net.Endpoint(1))

	fab.Partition([]int{0}, []int{1})
	if err := a.Send(1, sendTag(0), &comm.Bytes{Data: []byte("lost")}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0, sendTag(0)); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("partitioned message arrived: %v", err)
	}
	fab.Heal()
	if err := a.Send(1, sendTag(1), &comm.Bytes{Data: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0, sendTag(1)); err != nil {
		t.Fatalf("healed link still dropping: %v", err)
	}
	if fab.Stats().Partitioned != 1 {
		t.Fatalf("partition stats = %+v", fab.Stats())
	}
}

// TestScheduledPartitionWindow: a partition windowed on the sender's
// send count activates and expires deterministically.
func TestScheduledPartitionWindow(t *testing.T) {
	fab, err := New(Plan{
		Seed: 5,
		Partitions: []Partition{
			{Groups: [][]int{{0}, {1}}, From: 1, Until: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := memnet.New(2, memnet.WithRecvTimeout(150*time.Millisecond))
	defer net.Close()
	a := fab.Wrap(net.Endpoint(0))
	b := fab.Wrap(net.Endpoint(1))

	// Send 1: before the window — delivered.
	// Send 2: inside [From=1, Until=2) counting "count > From && count <= Until" — dropped.
	// Send 3: past the window — delivered.
	for i := uint32(0); i < 3; i++ {
		if err := a.Send(1, sendTag(i), &comm.Bytes{Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Recv(0, sendTag(0)); err != nil {
		t.Fatalf("send 1 (pre-window) lost: %v", err)
	}
	if _, err := b.Recv(0, sendTag(2)); err != nil {
		t.Fatalf("send 3 (post-window) lost: %v", err)
	}
	if _, err := b.Recv(0, sendTag(1)); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("send 2 (in-window) should have been dropped: %v", err)
	}
}

// TestDuplicateDeliversTwice: a duplicated message leaves a surplus
// copy queued behind the matched receive (inert for the protocol).
func TestDuplicateDeliversTwice(t *testing.T) {
	fab, err := New(Plan{Seed: 6, Duplicate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	net := memnet.New(2, memnet.WithRecvTimeout(time.Second))
	defer net.Close()
	a := fab.Wrap(net.Endpoint(0))
	b := fab.Wrap(net.Endpoint(1))
	if err := a.Send(1, sendTag(0), &comm.Floats{Vals: []float32{7}}); err != nil {
		t.Fatal(err)
	}
	fab.Flush()
	p, err := b.Recv(0, sendTag(0))
	if err != nil || p.(*comm.Floats).Vals[0] != 7 {
		t.Fatalf("first copy: %v %v", p, err)
	}
	// The duplicate is already queued (Flush waited for delivery).
	p, err = b.Recv(0, sendTag(0))
	if err != nil || p.(*comm.Floats).Vals[0] != 7 {
		t.Fatalf("duplicate copy: %v %v", p, err)
	}
}

// TestPlanValidation rejects malformed plans at construction.
func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Drop: -0.1},
		{Duplicate: 1.5},
		{Delay: 0.5}, // no MaxDelay
		{MaxDelay: -time.Second},
		{Kills: []Kill{{Rank: -1}}},
		{Kills: []Kill{{Rank: 0, AfterSends: -5}}},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Fatalf("plan %d accepted: %+v", i, p)
		}
	}
	if _, err := New(Plan{Seed: 9, Drop: 0.5, Delay: 0.1, MaxDelay: time.Millisecond}); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestKillOnKind pins the protocol-step fault point: an armed rank
// survives sends of other kinds, crash-stops exactly on its next send
// of the armed kind, and the trigger is one-shot.
func TestKillOnKind(t *testing.T) {
	fab, err := New(Plan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := memnet.New(2, memnet.WithRecvTimeout(5*time.Second))
	t.Cleanup(net.Close)
	a := fab.Wrap(net.Endpoint(0))
	b := fab.Wrap(net.Endpoint(1))

	fab.KillOnKind(0, comm.KindControl)

	// A send of a different kind passes through untouched.
	dataTag := comm.MakeTag(comm.KindApp, 0, 1)
	if err := a.Send(1, dataTag, &comm.Floats{Vals: []float32{1}}); err != nil {
		t.Fatalf("non-armed kind send failed: %v", err)
	}
	if _, err := b.Recv(0, dataTag); err != nil {
		t.Fatalf("non-armed kind not delivered: %v", err)
	}

	// The armed kind crash-stops the sender.
	ctlTag := comm.MakeTag(comm.KindControl, 0, 0)
	if err := a.Send(1, ctlTag, &comm.Control{Epoch: 1}); !errors.Is(err, comm.ErrClosed) {
		t.Fatalf("armed kind send: got %v, want ErrClosed", err)
	}
	if !fab.Killed(0) {
		t.Fatal("rank 0 not killed by KillOnKind")
	}
	// One-shot: other ranks are unaffected and can still send control.
	if err := b.Send(1, ctlTag, &comm.Control{Epoch: 1}); err != nil {
		t.Fatalf("bystander control send failed: %v", err)
	}
	if _, err := b.Recv(1, ctlTag); err != nil {
		t.Fatalf("bystander control not delivered: %v", err)
	}
	// Arming a dead or out-of-range rank is a no-op.
	fab.KillOnKind(0, comm.KindApp)
	fab.KillOnKind(99, comm.KindApp)
}
