package faultnet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"kylix/internal/comm"
)

// recorder captures the messages a fabric actually hands to the
// underlying transport, per link, in delivery order. Per-link order is
// the fabric's determinism contract (cross-link order is scheduling).
type recorder struct {
	mu   sync.Mutex
	seqs map[linkKey][]string
}

func newRecorder() *recorder {
	return &recorder{seqs: make(map[linkKey][]string)}
}

func (r *recorder) record(from, to int, tag comm.Tag, p comm.Payload) {
	r.mu.Lock()
	k := linkKey{from, to}
	r.seqs[k] = append(r.seqs[k], fmt.Sprintf("%v|%x", tag, p.AppendTo(nil)))
	r.mu.Unlock()
}

// recEndpoint is a transport stub: sends are recorded, receives are
// unsupported (the determinism property is about the send side).
type recEndpoint struct {
	rank, size int
	rec        *recorder
}

func (e *recEndpoint) Rank() int { return e.rank }
func (e *recEndpoint) Size() int { return e.size }
func (e *recEndpoint) Send(to int, tag comm.Tag, p comm.Payload) error {
	e.rec.record(e.rank, to, tag, p)
	return nil
}
func (e *recEndpoint) Recv(from int, tag comm.Tag) (comm.Payload, error) {
	return nil, comm.ErrTimeout
}
func (e *recEndpoint) RecvAny(froms []int, tag comm.Tag) (int, comm.Payload, error) {
	return 0, nil, comm.ErrTimeout
}
func (e *recEndpoint) RecvGroup(groups [][]int, tag comm.Tag) (int, comm.Payload, error) {
	return 0, nil, comm.ErrTimeout
}
func (e *recEndpoint) Close() error { return nil }

// runScript drives a fixed send schedule (round-robin over 4 ranks, 30
// sends each, every destination, distinct tags) through a fresh fabric
// and returns the per-link delivered sequences.
func runScript(t *testing.T, plan Plan, concurrent bool) map[linkKey][]string {
	t.Helper()
	const size, msgs = 4, 30
	fab, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	eps := make([]comm.Endpoint, size)
	for r := 0; r < size; r++ {
		eps[r] = fab.Wrap(&recEndpoint{rank: r, size: size, rec: rec})
	}
	send := func(r, i int) {
		to := (r + 1 + i%(size-1)) % size
		tag := comm.MakeTag(comm.KindApp, 0, uint32(r*msgs+i))
		payload := &comm.Bytes{Data: []byte{byte(r), byte(to), byte(i)}}
		// ErrClosed after a scheduled kill is part of the schedule.
		_ = eps[r].Send(to, tag, payload)
	}
	if concurrent {
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					send(r, i)
				}
			}(r)
		}
		wg.Wait()
	} else {
		for i := 0; i < msgs; i++ {
			for r := 0; r < size; r++ {
				send(r, i)
			}
		}
	}
	fab.Close()
	return rec.seqs
}

var chaosPlan = Plan{
	Seed:      0xBEEF,
	Drop:      0.2,
	Duplicate: 0.2,
	Delay:     0.3,
	MaxDelay:  500 * time.Microsecond,
	Reorder:   0.2,
}

// TestSameSeedSameDelivery is the core determinism property: the same
// plan and the same send schedule produce byte-identical per-link
// delivered sequences — including the truncation from a scheduled kill.
func TestSameSeedSameDelivery(t *testing.T) {
	plan := chaosPlan
	plan.Kills = []Kill{{Rank: 1, AfterSends: 12}}
	a := runScript(t, plan, false)
	b := runScript(t, plan, false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\nrun A: %v\nrun B: %v", a, b)
	}
	// Sanity: the schedule actually mutated the stream (some link lost
	// or gained messages vs the fault-free count).
	perturbed := false
	for k, seq := range a {
		if k.from == 1 {
			perturbed = true // rank 1 was killed after 12 sends
		}
		_ = seq
	}
	if !perturbed || len(a) == 0 {
		t.Fatal("script produced no traffic")
	}
}

// TestConcurrentSendersStillDeterministicPerLink: goroutine
// interleaving must not leak into per-link delivery order, because
// decisions depend only on (seed, from, to, tag) and links are FIFO.
// (No kills here: kill timing relative to *other* ranks' sends is
// scheduling, not part of the per-link contract.)
func TestConcurrentSendersStillDeterministicPerLink(t *testing.T) {
	a := runScript(t, chaosPlan, true)
	b := runScript(t, chaosPlan, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("concurrent runs diverged:\nrun A: %v\nrun B: %v", a, b)
	}
}

// TestDifferentSeedDifferentSchedule: seeds are not vacuous — changing
// the seed changes which messages are dropped/duplicated.
func TestDifferentSeedDifferentSchedule(t *testing.T) {
	p2 := chaosPlan
	p2.Seed = chaosPlan.Seed + 1
	a := runScript(t, chaosPlan, false)
	b := runScript(t, p2, false)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDecidePure: decide is a pure function — repeated calls with the
// same arguments return the same action, on the same fabric and across
// fabrics sharing the plan.
func TestDecidePure(t *testing.T) {
	f1, _ := New(chaosPlan)
	f2, _ := New(chaosPlan)
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			for seq := uint32(0); seq < 50; seq++ {
				tag := comm.MakeTag(comm.KindReduce, 1, seq)
				a := f1.decide(from, to, tag)
				if b := f1.decide(from, to, tag); a != b {
					t.Fatalf("decide not idempotent: %+v vs %+v", a, b)
				}
				if b := f2.decide(from, to, tag); a != b {
					t.Fatalf("decide differs across fabrics: %+v vs %+v", a, b)
				}
			}
		}
	}
}

// FuzzDecide fuzzes the decision core: for arbitrary (seed, from, to,
// tag) the action must be stable across independent fabrics and its
// fields in range.
func FuzzDecide(f *testing.F) {
	f.Add(int64(1), 0, 1, uint64(42))
	f.Add(int64(-7), 3, 2, uint64(0))
	f.Add(int64(0xBEEF), 15, 8, uint64(1<<40))
	f.Fuzz(func(t *testing.T, seed int64, from, to int, rawTag uint64) {
		plan := Plan{
			Seed:      seed,
			Drop:      0.25,
			Duplicate: 0.25,
			Delay:     0.25,
			MaxDelay:  time.Millisecond,
			Reorder:   0.25,
		}
		f1, err := New(plan)
		if err != nil {
			t.Fatal(err)
		}
		f2, _ := New(plan)
		tag := comm.Tag(rawTag)
		a := f1.decide(from, to, tag)
		if b := f2.decide(from, to, tag); a != b {
			t.Fatalf("decide(%d,%d,%d,%d) unstable: %+v vs %+v", seed, from, to, rawTag, a, b)
		}
		if a.copies < 1 || a.copies > 2 {
			t.Fatalf("copies %d out of range", a.copies)
		}
		if a.delay < 0 || a.delay > plan.MaxDelay {
			t.Fatalf("delay %v out of range", a.delay)
		}
		if a.drop && (a.copies != 1 || a.delay != 0 || a.reorder) {
			t.Fatalf("dropped message carries other actions: %+v", a)
		}
	})
}
