package par

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/sparse"
)

// genMap builds an injective position map of the given length into
// [0, dstRows): a shuffled sample of distinct destinations, with a few
// entries knocked out to -1 (partial maps).
func genMap(rng *rand.Rand, rows, dstRows int) []int32 {
	perm := rng.Perm(dstRows)
	m := make([]int32, rows)
	for i := range m {
		if rng.Intn(16) == 0 {
			m[i] = -1
			continue
		}
		m[i] = int32(perm[i])
	}
	return m
}

func genVals(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(math.Float32frombits(0x3f000000 + uint32(rng.Intn(1<<21))))
	}
	return v
}

// TestCombineMatchesSerial proves bit-exactness of the sharded combine
// against the serial kernel for every reducer, width and worker count.
func TestCombineMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reducers := []sparse.Reducer{sparse.Sum, sparse.Max, sparse.Min, sparse.Or}
	for _, workers := range []int{1, 2, 3, 4} {
		p := NewPool(workers)
		for _, width := range []int{1, 2, 4} {
			for _, rows := range []int{0, 1, 100, 5000, 40000} {
				dstRows := rows + 7
				m := genMap(rng, rows, dstRows)
				src := genVals(rng, rows*width)
				base := genVals(rng, dstRows*width)
				for _, red := range reducers {
					want := append([]float32(nil), base...)
					sparse.CombineInto(red, want, m, src, width)
					got := append([]float32(nil), base...)
					shards := p.CombineInto(red, got, m, src, width)
					p.End()
					if workers == 1 && shards != 1 {
						t.Fatalf("1-worker pool used %d shards", shards)
					}
					for i := range want {
						if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
							t.Fatalf("workers=%d width=%d rows=%d red=%s: bit mismatch at %d: %x vs %x",
								workers, width, rows, red.Name(), i, math.Float32bits(want[i]), math.Float32bits(got[i]))
						}
					}
				}
			}
		}
	}
}

// TestGatherAndFillMatchSerial covers the other two kernels the same
// way.
func TestGatherAndFillMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		for _, width := range []int{1, 3, 4} {
			for _, rows := range []int{0, 17, 6000, 33000} {
				srcRows := rows + 3
				m := genMap(rng, rows, srcRows)
				src := genVals(rng, srcRows*width)
				want := make([]float32, rows*width)
				sparse.GatherInto(want, m, src, width, -1.5)
				got := make([]float32, rows*width)
				p.GatherInto(got, m, src, width, -1.5)

				fwant := make([]float32, rows*width)
				sparse.Fill(fwant, 2.25)
				fgot := make([]float32, rows*width)
				p.Fill(fgot, 2.25)
				p.End()

				for i := range want {
					if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
						t.Fatalf("gather workers=%d width=%d rows=%d: mismatch at %d", workers, width, rows, i)
					}
					if math.Float32bits(fwant[i]) != math.Float32bits(fgot[i]) {
						t.Fatalf("fill workers=%d width=%d rows=%d: mismatch at %d", workers, width, rows, i)
					}
				}
			}
		}
	}
}

// TestSmallKernelsStaySerial checks the engage threshold: tiny kernels
// never pay the dispatch.
func TestSmallKernelsStaySerial(t *testing.T) {
	p := NewPool(4)
	defer p.End()
	m := genMap(rand.New(rand.NewSource(3)), 100, 107)
	src := make([]float32, 100)
	dst := make([]float32, 107)
	if shards := p.CombineInto(sparse.Sum, dst, m, src, 1); shards != 1 {
		t.Fatalf("100-row combine used %d shards, want 1", shards)
	}
	if p.running {
		t.Fatal("serial kernel spawned workers")
	}
}

// TestEndWithoutDispatch checks End is safe on an idle (or nil) pool
// and that passes can repeat spawn/join cycles.
func TestEndWithoutDispatch(t *testing.T) {
	var nilPool *Pool
	nilPool.End()
	if nilPool.Workers() != 1 {
		t.Fatal("nil pool must report 1 worker")
	}
	p := NewPool(3)
	p.End() // never dispatched
	rng := rand.New(rand.NewSource(4))
	m := genMap(rng, 30000, 30007)
	src := genVals(rng, 30000)
	dst := make([]float32, 30007)
	for pass := 0; pass < 5; pass++ {
		if shards := p.CombineInto(sparse.Sum, dst, m, src, 1); shards < 2 {
			t.Fatalf("pass %d: expected sharded run, got %d", pass, shards)
		}
		p.End()
		if p.running {
			t.Fatalf("pass %d: workers still running after End", pass)
		}
	}
}

// TestPoolHammer is the -race workout: many passes, mixed kernel sizes
// and kinds, verifying sums so a lost or doubled shard shows up even
// without the race detector.
func TestPoolHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPool(4)
	rows := 20000
	m := make([]int32, rows)
	for i := range m {
		m[i] = int32(i)
	}
	src := genVals(rng, rows)
	var serialSum, poolSum float64
	dst := make([]float32, rows)
	for pass := 0; pass < 200; pass++ {
		sparse.Fill(dst, 0)
		sparse.CombineInto(sparse.Sum, dst, m, src, 1)
		serialSum = 0
		for _, v := range dst {
			serialSum += float64(v)
		}
		p.Fill(dst, 0)
		p.CombineInto(sparse.Sum, dst, m, src, 1)
		small := dst[:64]
		p.GatherInto(small, m[:64], dst, 1, 0) // tiny: serial path interleaved
		p.End()
		poolSum = 0
		for _, v := range dst {
			poolSum += float64(v)
		}
		if serialSum != poolSum {
			t.Fatalf("pass %d: pool sum %v != serial %v", pass, poolSum, serialSum)
		}
	}
}

// TestWarmDispatchAllocs checks the pool's steady state allocates
// nothing: after the first pass, dispatch + End must be alloc-free
// (goroutine launches recycle the runtime's g free list).
func TestWarmDispatchAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewPool(2)
	rows := 40000
	m := genMap(rng, rows, rows+1)
	src := genVals(rng, rows)
	dst := make([]float32, rows+1)
	// Warm up: first pass may grow runtime structures.
	for i := 0; i < 3; i++ {
		p.CombineInto(sparse.Sum, dst, m, src, 1)
		p.End()
	}
	avg := testing.AllocsPerRun(50, func() {
		p.CombineInto(sparse.Sum, dst, m, src, 1)
		p.End()
	})
	if avg != 0 {
		t.Fatalf("warm sharded pass allocates %v allocs/op, want 0", avg)
	}
}

func BenchmarkPoolCombineW4(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		name := map[int]string{1: "serial", 2: "w2", 4: "w4"}[workers]
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			p := NewPool(workers)
			rows := 1 << 15
			m := genMap(rng, rows, rows+1)
			src := genVals(rng, rows*4)
			dst := make([]float32, (rows+1)*4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.CombineInto(sparse.Sum, dst, m, src, 4)
			}
			b.StopTimer()
			p.End()
		})
	}
}
