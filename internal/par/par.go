// Package par shards the sparse combine/gather kernels across a small
// per-machine worker pool — the intra-node threading of the paper's
// Figure 7, where the combine stage scales with cores until the wire
// becomes the bottleneck.
//
// Sharding is by contiguous row range of the position map. Within one
// kernel call the map is injective (piece positions into a sorted
// union), so shards write disjoint destination rows and the per-row
// float arithmetic is untouched: results are bit-identical to the
// serial fold for any worker count, which is why this package may live
// under the //kylix:deterministic contract. Callers must not hand the
// pool a map with colliding destinations (CombineInto tolerates those
// only serially).
//
// The pool is built once per machine and owns no goroutines while idle.
// A pass (one Reduce/ConfigureReduce) lazily spawns its workers at the
// first kernel large enough to shard and joins them at pass end, so a
// fleet of Machines never leaks goroutines — Machines have no Close.
// All command channels and the job slot are preallocated: a warm pass
// through the pool performs no allocation (the goroutine launch itself
// is recycled by the runtime's g free list).
//
//kylix:deterministic
package par

import (
	"runtime"
	"sync"

	"kylix/internal/sparse"
)

// MaxDefaultWorkers caps the default pool size: past a few cores the
// combine stage is memory-bandwidth-bound and extra workers only add
// synchronization (the Figure 7 curve flattens the same way).
const MaxDefaultWorkers = 4

// minShardElems is the smallest number of float32 elements (rows ×
// width) worth handing to another goroutine: the cross-goroutine
// wake-up costs on the order of a microsecond, so a shard must carry
// at least a few microseconds of arithmetic to win.
const minShardElems = 8192

// Default returns the default worker count: min(GOMAXPROCS, 4).
func Default() int {
	n := runtime.GOMAXPROCS(0)
	if n > MaxDefaultWorkers {
		n = MaxDefaultWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

// kernel ops.
const (
	opCombine uint8 = iota
	opGather
	opFill
)

// worker commands.
const (
	cmdRun = iota
	cmdExit
)

// job is the pool's single in-flight kernel. The leader fills it, then
// signals each engaged worker over its command channel (the channel
// send publishes the fields); workers compute their row range from
// their own index, so the job carries no per-shard state.
type job struct {
	op     uint8
	shards int
	width  int
	red    sparse.Reducer
	dst    []float32
	m      []int32
	src    []float32
	fill   float32
}

// Pool is one machine's combine/gather worker pool. Like the Machine
// that owns it, it is single-goroutine on the caller side: one kernel
// runs at a time, with the leader goroutine taking shard 0 and parked
// workers the rest.
type Pool struct {
	n   int
	cmd []chan int // cmd[i] wakes worker i (1..n-1); buffered so the leader never blocks
	// entry[i] is worker i's prebuilt spawn closure: a `go` statement
	// whose callee takes arguments (a receiver counts) heap-allocates a
	// wrapper on every launch, while `go fn()` on a stored func value
	// hands the funcval to the runtime directly — the difference between
	// 1 alloc per pass per worker and none.
	entry []func()
	job   job

	running bool           // workers spawned for the current pass
	wg      sync.WaitGroup // in-flight shards of the current job
	exit    sync.WaitGroup // live workers of the current pass
}

// NewPool builds a pool of n workers (n < 1 selects Default()). A pool
// of 1 never spawns goroutines: every kernel runs inline.
func NewPool(n int) *Pool {
	if n < 1 {
		n = Default()
	}
	p := &Pool{n: n, cmd: make([]chan int, n), entry: make([]func(), n)}
	for i := 1; i < n; i++ {
		p.cmd[i] = make(chan int, 1)
		i := i
		p.entry[i] = func() { p.worker(i) }
	}
	return p
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.n
}

// shardsFor sizes a kernel's shard count by its element volume,
// clamped to the pool.
func (p *Pool) shardsFor(rows, width int) int {
	if p == nil || p.n <= 1 {
		return 1
	}
	shards := rows * width / minShardElems
	if shards > p.n {
		shards = p.n
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// CombineInto is the sharded sparse.CombineInto: rows of m (and the
// matching rows of src) are split across the pool. m must be injective
// over its non-negative entries — shards write dst concurrently and
// rely on destination rows being disjoint. Returns the shard count
// used (1 = ran serially).
//
//kylix:hotpath
func (p *Pool) CombineInto(red sparse.Reducer, dst []float32, m []int32, src []float32, width int) int {
	shards := p.shardsFor(len(m), width)
	if shards <= 1 {
		sparse.CombineInto(red, dst, m, src, width)
		return 1
	}
	p.job = job{op: opCombine, shards: shards, width: width, red: red, dst: dst, m: m, src: src}
	p.dispatch(shards)
	return shards
}

// GatherInto is the sharded sparse.GatherInto: rows of dst (and the
// matching rows of m) are split across the pool; src is shared
// read-only. Returns the shard count used.
//
//kylix:hotpath
func (p *Pool) GatherInto(dst []float32, m []int32, src []float32, width int, fill float32) int {
	shards := p.shardsFor(len(m), width)
	if shards <= 1 {
		sparse.GatherInto(dst, m, src, width, fill)
		return 1
	}
	p.job = job{op: opGather, shards: shards, width: width, dst: dst, m: m, src: src, fill: fill}
	p.dispatch(shards)
	return shards
}

// Fill is the sharded sparse.Fill (the accumulator reset to the
// reducer's identity). Returns the shard count used.
//
//kylix:hotpath
func (p *Pool) Fill(data []float32, v float32) int {
	shards := p.shardsFor(len(data), 1)
	if shards <= 1 {
		sparse.Fill(data, v)
		return 1
	}
	p.job = job{op: opFill, shards: shards, width: 1, dst: data, fill: v}
	p.dispatch(shards)
	return shards
}

// dispatch hands shards 1..shards-1 to parked workers, runs shard 0
// inline, and waits for all of them. Workers are spawned lazily at the
// first sharded kernel of a pass.
//
//kylix:hotpath
//kylix:owned
func (p *Pool) dispatch(shards int) {
	if !p.running {
		p.running = true
		p.exit.Add(p.n - 1)
		for i := 1; i < p.n; i++ {
			go p.entry[i]() //kylix:allow hotpathalloc:go — per-pass workers, joined by End; the g and the prebuilt funcval are both recycled
		}
	}
	p.wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		p.cmd[s] <- cmdRun
	}
	p.runShard(0)
	p.wg.Wait()
}

// End joins the workers spawned during the current pass. Callers defer
// it around every pass that may shard; when nothing sharded it is a
// field test and a return.
//
//kylix:hotpath
func (p *Pool) End() {
	if p == nil || !p.running {
		return
	}
	p.running = false
	for i := 1; i < p.n; i++ {
		p.cmd[i] <- cmdExit
	}
	p.exit.Wait()
}

// worker is one pass-scoped pool goroutine: it runs its own shard of
// each dispatched job until told to exit.
//
//kylix:hotpath
func (p *Pool) worker(i int) {
	for {
		if <-p.cmd[i] == cmdExit {
			p.exit.Done()
			return
		}
		p.runShard(i)
		p.wg.Done()
	}
}

// runShard executes shard s of the current job: rows
// [rows*s/shards, rows*(s+1)/shards) of the position map (or of dst,
// for Fill), delegating to the serial kernels on the subslices. The
// split is pure integer arithmetic on (rows, shards, s), so every
// worker derives its bounds without shared per-shard state.
//
//kylix:hotpath
func (p *Pool) runShard(s int) {
	j := &p.job
	w := j.width
	rows := len(j.m)
	if j.op == opFill {
		rows = len(j.dst)
	}
	lo := rows * s / j.shards
	hi := rows * (s + 1) / j.shards
	switch j.op {
	case opCombine:
		sparse.CombineInto(j.red, j.dst, j.m[lo:hi], j.src[lo*w:hi*w], w)
	case opGather:
		sparse.GatherInto(j.dst[lo*w:hi*w], j.m[lo:hi], j.src, w, j.fill)
	case opFill:
		sparse.Fill(j.dst[lo:hi], j.fill)
	}
}
