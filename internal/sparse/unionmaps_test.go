package sparse

import (
	"math/rand"
	"testing"
)

func TestUnionMapsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(9)
		sets := make([]Set, k)
		maps := make([][]int32, k)
		for i := range sets {
			n := rng.Intn(30)
			idx := make([]int32, n)
			for j := range idx {
				idx[j] = int32(rng.Intn(40))
			}
			sets[i] = MustNewSet(idx)
			maps[i] = make([]int32, len(sets[i]))
		}
		var u UnionScratch
		got := u.UnionMaps(sets, maps)
		want, wantMaps := UnionWithMaps(sets)
		if len(got) != len(want) {
			t.Fatalf("trial %d: union len %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: union[%d] = %d want %d", trial, i, got[i], want[i])
			}
		}
		for s := range maps {
			for j := range maps[s] {
				if maps[s][j] != wantMaps[s][j] {
					t.Fatalf("trial %d: maps[%d][%d] = %d want %d (k=%d)", trial, s, j, maps[s][j], wantMaps[s][j], k)
				}
			}
		}
	}
}
