package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sync"
)

// Compressed index-set wire format.
//
// Raw key Sets cost 8 bytes per feature on the wire, and the hash half
// of every Key is incompressible noise. But the hash is redundant:
// hash32 is a fixed bijection, so the receiver can rebuild the exact
// Key from the 32-bit index alone. The codec therefore transmits only
// the indices, sorted by index value (not key order), delta-encoded as
// varints, with a run-length escape for the dense stretches that
// dominate the lower butterfly layers (paper Figure 4: union density
// approaches 1 toward the bottom, where consecutive indices abound).
//
// One encoded set ("block", version 1, selected by the payload
// discriminators in internal/comm) is:
//
//	block   := uvarint(n)                      // number of indices
//	           [ uvarint(first) token* ]       // present iff n > 0
//	token   := uvarint(v)
//	  v&1 == 0  →  gap:  next = prev + 2 + v>>1   // delta ≥ 2
//	  v&1 == 1  →  run:  v>>1 ≥ 1 consecutive deltas of exactly 1
//
// Blocks are self-delimiting (the count says when to stop), so payloads
// concatenate them without length prefixes. The encoder is canonical:
// runs are maximal, so two runs are never adjacent and every delta-1
// step is inside a run. Re-encoding a decoded block is therefore
// byte-identical, which the transports rely on when they memoize
// encodings.
//
// A typical sparse piece (density ~1/8, deltas ~8) costs ~1 byte per
// index; a fully dense range costs ~10 bits total regardless of length.
// Worst case (adversarial alternating gaps under 2^7) is 1 byte per
// index — still 8x under the raw format.

// maxCompressedKeys bounds the decoded size of one block. A run token
// claims up to 2^63 indices in three bytes, so without a cap a hostile
// 4-byte message could demand gigabytes. 2^26 keys (512 MiB of Set) is
// far above any per-piece set this protocol ships; the encoder refuses
// the same bound so the two sides agree on what is representable.
const maxCompressedKeys = 1 << 26

// codecBuf is the pooled per-encode scratch: the index projection of
// the set being encoded, sorted by index value.
type codecBuf struct {
	idx []int32
}

var codecPool = sync.Pool{New: func() any { return new(codecBuf) }}

// AppendCompressed appends the compressed encoding of s to dst and
// returns the extended buffer. s must be a valid Set (sorted by key,
// distinct indices) with at most maxCompressedKeys entries; duplicate
// indices panic rather than corrupt the stream.
//
//kylix:hotpath
func AppendCompressed(dst []byte, s Set) []byte {
	if len(s) > maxCompressedKeys {
		panic("sparse: AppendCompressed: set exceeds maxCompressedKeys")
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	if len(s) == 0 {
		return dst
	}
	cb := codecPool.Get().(*codecBuf)
	if cap(cb.idx) < len(s) {
		//kylix:allow hotpathalloc:make -- pooled scratch grows to the largest set seen, then is reused
		cb.idx = make([]int32, len(s))
	}
	idx := cb.idx[:len(s)]
	for i, k := range s {
		idx[i] = k.Index()
	}
	slices.Sort(idx)

	prev := idx[0]
	dst = binary.AppendUvarint(dst, uint64(uint32(prev)))
	run := uint64(0)
	for _, x := range idx[1:] {
		d := uint32(x - prev)
		prev = x
		if d == 1 {
			run++
			continue
		}
		if d == 0 {
			panic("sparse: AppendCompressed: duplicate index in Set")
		}
		if run > 0 {
			dst = binary.AppendUvarint(dst, run<<1|1)
			run = 0
		}
		dst = binary.AppendUvarint(dst, uint64(d-2)<<1)
	}
	if run > 0 {
		dst = binary.AppendUvarint(dst, run<<1|1)
	}
	codecPool.Put(cb)
	return dst
}

// DecodeCompressed parses one compressed block from buf, appends the
// decoded keys (in key order) to dst, and returns the extended Set and
// the unconsumed remainder of buf. The decoded keys are rebuilt with
// MakeKey, so a hostile peer cannot inject hash/index-inconsistent
// Keys. Indices beyond int32 range, empty run tokens, counts over
// maxCompressedKeys, and truncated streams all error.
//
//kylix:hotpath
func DecodeCompressed(dst Set, buf []byte) (Set, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("sparse: compressed set: bad count varint")
	}
	buf = buf[sz:]
	if n == 0 {
		return dst, buf, nil
	}
	if n > maxCompressedKeys {
		return nil, nil, fmt.Errorf("sparse: compressed set claims %d keys (limit %d)", n, maxCompressedKeys)
	}
	first, sz := binary.Uvarint(buf)
	if sz <= 0 || first > math.MaxInt32 {
		return nil, nil, fmt.Errorf("sparse: compressed set: bad first index")
	}
	buf = buf[sz:]
	base := len(dst)
	dst = slices.Grow(dst, int(n))
	//kylix:allow hotpathalloc:append -- grown above to the exact decoded size; never reallocates
	dst = append(dst, MakeKey(int32(first)))
	cur := uint64(first)
	for uint64(len(dst)-base) < n {
		tok, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("sparse: compressed set: truncated token stream")
		}
		buf = buf[sz:]
		if tok&1 == 1 {
			k := tok >> 1
			if k == 0 {
				return nil, nil, fmt.Errorf("sparse: compressed set: empty run token")
			}
			if uint64(len(dst)-base)+k > n {
				return nil, nil, fmt.Errorf("sparse: compressed set: run overflows declared count")
			}
			if cur+k > math.MaxInt32 {
				return nil, nil, fmt.Errorf("sparse: compressed set: index overflows int32")
			}
			for i := uint64(0); i < k; i++ {
				cur++
				//kylix:allow hotpathalloc:append -- grown above to the exact decoded size; never reallocates
				dst = append(dst, MakeKey(int32(cur)))
			}
		} else {
			cur += (tok >> 1) + 2
			if cur > math.MaxInt32 {
				return nil, nil, fmt.Errorf("sparse: compressed set: index overflows int32")
			}
			//kylix:allow hotpathalloc:append -- grown above to the exact decoded size; never reallocates
			dst = append(dst, MakeKey(int32(cur)))
		}
	}
	// The stream carries indices in index order; Sets are key (hash)
	// ordered. One sort restores the invariant.
	slices.Sort(dst[base:])
	return dst, buf, nil
}

// RawEncodedSize is the wire cost of a set in the uncompressed 8-byte
// key format, for raw-vs-encoded accounting.
func RawEncodedSize(s Set) int { return 8 * len(s) }
