package sparse

import (
	"math/rand"
	"testing"
)

// Package-level micro-benchmarks of the protocol's hot kernels.

func benchSets(n int) []Set {
	rng := rand.New(rand.NewSource(1))
	sets := make([]Set, 8)
	for i := range sets {
		sets[i] = randomSet(rng, int32(n), int32(n*4))
	}
	return sets
}

func BenchmarkUnionWithMaps(b *testing.B) {
	sets := benchSets(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionWithMaps(sets)
	}
}

func BenchmarkCombineIntoSum(b *testing.B) {
	sets := benchSets(8192)
	union, maps := UnionWithMaps(sets)
	acc := make([]float32, len(union))
	src := make([]float32, len(sets[0]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CombineInto(Sum, acc, maps[0], src, 1)
	}
}

func BenchmarkCombineIntoSumW4(b *testing.B) {
	sets := benchSets(8192)
	union, maps := UnionWithMaps(sets)
	acc := make([]float32, len(union)*4)
	src := make([]float32, len(sets[0])*4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CombineInto(Sum, acc, maps[0], src, 4)
	}
}

func BenchmarkCombineIntoMaxW1(b *testing.B) {
	sets := benchSets(8192)
	union, maps := UnionWithMaps(sets)
	acc := make([]float32, len(union))
	src := make([]float32, len(sets[0]))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CombineInto(Max, acc, maps[0], src, 1)
	}
}

func BenchmarkGatherIntoW4(b *testing.B) {
	sets := benchSets(8192)
	union, maps := UnionWithMaps(sets)
	src := make([]float32, len(union)*4)
	dst := make([]float32, len(sets[0])*4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherInto(dst, maps[0], src, 4, 0)
	}
}

func BenchmarkTreeUnion(b *testing.B) {
	sets := benchSets(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreeUnion(sets)
	}
}

func BenchmarkGatherInto(b *testing.B) {
	sets := benchSets(8192)
	union, maps := UnionWithMaps(sets)
	src := make([]float32, len(union))
	dst := make([]float32, len(sets[0]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherInto(dst, maps[0], src, 1, 0)
	}
}

func BenchmarkSplitOffsets(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randomSet(rng, 1<<16, 1<<22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SplitOffsets(s, FullRange(), 8)
	}
}

func BenchmarkNewSet(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	idx := make([]int32, 1<<14)
	for i := range idx {
		idx[i] = rng.Int31n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NewSet(idx); err != nil {
			b.Fatal(err)
		}
	}
}
