package sparse

import "sort"

// HashUnion computes the union of many Sets using a hash table followed
// by a sort. It is the baseline that Kylix §VI-A reports being ~5x slower
// than the tree merge because of random-memory-access constants; it is
// retained here for the corresponding ablation benchmark and as a
// correctness oracle for TreeUnion.
func HashUnion(sets []Set) Set {
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	seen := make(map[Key]struct{}, total)
	for _, s := range sets {
		for _, k := range s {
			seen[k] = struct{}{}
		}
	}
	out := make(Set, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// HashUnionWithMaps is the hash-table counterpart of UnionWithMaps,
// building per-input position maps through hash lookups.
func HashUnionWithMaps(sets []Set) (Set, [][]int32) {
	union := HashUnion(sets)
	pos := make(map[Key]int32, len(union))
	for i, k := range union {
		pos[k] = int32(i)
	}
	maps := make([][]int32, len(sets))
	for i, s := range sets {
		m := make([]int32, len(s))
		for j, k := range s {
			m[j] = pos[k]
		}
		maps[i] = m
	}
	return union, maps
}
