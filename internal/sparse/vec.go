package sparse

import (
	"fmt"
	"math"
)

// Vec is a sparse vector: Data holds Width float32 values for each key of
// Keys, laid out contiguously (Data[i*Width : (i+1)*Width] belongs to
// Keys[i]). Width > 1 supports matrix-shaped models (e.g. a factor model
// synchronizing several columns per feature) exactly as a dense stride.
type Vec struct {
	Keys  Set
	Data  []float32
	Width int
}

// NewVec allocates a zero-valued Vec over the given keys.
func NewVec(keys Set, width int) Vec {
	return Vec{Keys: keys, Data: make([]float32, len(keys)*width), Width: width}
}

// Validate checks the shape invariant.
func (v Vec) Validate() error {
	if v.Width <= 0 {
		return fmt.Errorf("sparse: Vec width %d must be positive", v.Width)
	}
	if len(v.Data) != len(v.Keys)*v.Width {
		return fmt.Errorf("sparse: Vec has %d keys, width %d, but %d values", len(v.Keys), v.Width, len(v.Data))
	}
	return nil
}

// Row returns the values for the i-th key.
func (v Vec) Row(i int) []float32 { return v.Data[i*v.Width : (i+1)*v.Width] }

// A Reducer combines the values of colliding features during the
// scatter-reduce. Combine must merge src into dst elementwise; both
// slices have the same length (a whole row or a batch of rows). Identity
// returns the value an accumulator slot starts from.
type Reducer interface {
	// Name identifies the reducer in logs and traces.
	Name() string
	// Identity is the neutral starting element.
	Identity() float32
	// Combine folds src into dst: dst[i] = op(dst[i], src[i]).
	Combine(dst, src []float32)
}

type sumReducer struct{}

func (sumReducer) Name() string      { return "sum" }
func (sumReducer) Identity() float32 { return 0 }
func (sumReducer) Combine(dst, src []float32) {
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] += s
	}
}

type maxReducer struct{}

func (maxReducer) Name() string      { return "max" }
func (maxReducer) Identity() float32 { return float32(math.Inf(-1)) }
func (maxReducer) Combine(dst, src []float32) {
	for i, s := range src {
		if s > dst[i] {
			dst[i] = s
		}
	}
}

type minReducer struct{}

func (minReducer) Name() string      { return "min" }
func (minReducer) Identity() float32 { return float32(math.Inf(1)) }
func (minReducer) Combine(dst, src []float32) {
	for i, s := range src {
		if s < dst[i] {
			dst[i] = s
		}
	}
}

// orReducer treats each float32 as a 32-bit mask and ORs them. It backs
// the HADI-style diameter estimation, whose Flajolet-Martin bitstrings
// reduce by bitwise union (Kylix §I-A2).
type orReducer struct{}

func (orReducer) Name() string      { return "or" }
func (orReducer) Identity() float32 { return 0 }
func (orReducer) Combine(dst, src []float32) {
	for i, s := range src {
		dst[i] = math.Float32frombits(math.Float32bits(dst[i]) | math.Float32bits(s))
	}
}

// Built-in reducers.
var (
	Sum Reducer = sumReducer{}
	Max Reducer = maxReducer{}
	Min Reducer = minReducer{}
	Or  Reducer = orReducer{}
)

// CombineInto folds a received value block into an accumulator through a
// position map: for each row p of src, row m[p] of dst is combined with
// it. This is the constant-time-per-element application of the f maps
// from Kylix §III-A. Rows mapped to -1 (possible only with partial maps)
// are skipped.
//
// The built-in reducers are dispatched once per call, not once per row:
// widths 1 and 4 get fully unrolled loops and every other width gets a
// fused strided loop, so the per-row cost is a map lookup and the
// arithmetic itself, with no interface call in the inner loop.
//
//kylix:hotpath
func CombineInto(red Reducer, dst []float32, m []int32, src []float32, width int) {
	switch width {
	case 1:
		combineW1(red, dst, m, src)
	case 4:
		combineW4(red, dst, m, src)
	default:
		combineStrided(red, dst, m, src, width)
	}
}

func combineW1(red Reducer, dst []float32, m []int32, src []float32) {
	// Pin src's length to the map's so the compiler proves src[p] in
	// bounds once, outside the loop, keeping the sum path at one load,
	// one bounds check (dst[q], irreducible) and one add per row.
	src = src[:len(m)]
	switch red.(type) {
	case sumReducer:
		for p, q := range m {
			if q >= 0 {
				dst[q] += src[p]
			}
		}
	case maxReducer:
		for p, q := range m {
			if q >= 0 && src[p] > dst[q] {
				dst[q] = src[p]
			}
		}
	case minReducer:
		for p, q := range m {
			if q >= 0 && src[p] < dst[q] {
				dst[q] = src[p]
			}
		}
	case orReducer:
		for p, q := range m {
			if q >= 0 {
				dst[q] = math.Float32frombits(math.Float32bits(dst[q]) | math.Float32bits(src[p]))
			}
		}
	default:
		for p, q := range m {
			if q >= 0 {
				red.Combine(dst[q:q+1], src[p:p+1])
			}
		}
	}
}

func combineW4(red Reducer, dst []float32, m []int32, src []float32) {
	switch red.(type) {
	case sumReducer:
		for p, q := range m {
			if q < 0 {
				continue
			}
			d := dst[int(q)*4 : int(q)*4+4 : int(q)*4+4]
			s := src[p*4 : p*4+4 : p*4+4]
			d[0] += s[0]
			d[1] += s[1]
			d[2] += s[2]
			d[3] += s[3]
		}
	default:
		combineStrided(red, dst, m, src, 4)
	}
}

func combineStrided(red Reducer, dst []float32, m []int32, src []float32, width int) {
	switch red.(type) {
	case sumReducer:
		for p, q := range m {
			if q < 0 {
				continue
			}
			d := dst[int(q)*width : (int(q)+1)*width]
			s := src[p*width : (p+1)*width]
			_ = d[len(s)-1]
			for c, v := range s {
				d[c] += v
			}
		}
	case maxReducer:
		for p, q := range m {
			if q < 0 {
				continue
			}
			d := dst[int(q)*width : (int(q)+1)*width]
			s := src[p*width : (p+1)*width]
			_ = d[len(s)-1]
			for c, v := range s {
				if v > d[c] {
					d[c] = v
				}
			}
		}
	case minReducer:
		for p, q := range m {
			if q < 0 {
				continue
			}
			d := dst[int(q)*width : (int(q)+1)*width]
			s := src[p*width : (p+1)*width]
			_ = d[len(s)-1]
			for c, v := range s {
				if v < d[c] {
					d[c] = v
				}
			}
		}
	case orReducer:
		for p, q := range m {
			if q < 0 {
				continue
			}
			d := dst[int(q)*width : (int(q)+1)*width]
			s := src[p*width : (p+1)*width]
			_ = d[len(s)-1]
			for c, v := range s {
				d[c] = math.Float32frombits(math.Float32bits(d[c]) | math.Float32bits(v))
			}
		}
	default:
		for p, q := range m {
			if q >= 0 {
				red.Combine(dst[int(q)*width:(int(q)+1)*width], src[p*width:(p+1)*width])
			}
		}
	}
}

// GatherInto extracts rows of src selected by the position map m into
// dst: row p of dst is row m[p] of src. This applies the g maps during
// the upward allgather. Rows mapped to -1 are filled with fill. Widths 1
// and 4 are unrolled; other widths use the strided copy.
//
//kylix:hotpath
func GatherInto(dst []float32, m []int32, src []float32, width int, fill float32) {
	switch width {
	case 1:
		for p, q := range m {
			if q >= 0 {
				dst[p] = src[q]
			} else {
				dst[p] = fill
			}
		}
	case 4:
		for p, q := range m {
			d := dst[p*4 : p*4+4 : p*4+4]
			if q >= 0 {
				s := src[int(q)*4 : int(q)*4+4 : int(q)*4+4]
				d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
			} else {
				d[0], d[1], d[2], d[3] = fill, fill, fill, fill
			}
		}
	default:
		for p, q := range m {
			row := dst[p*width : (p+1)*width]
			if q >= 0 {
				copy(row, src[int(q)*width:(int(q)+1)*width])
			} else {
				for c := range row {
					row[c] = fill
				}
			}
		}
	}
}

// Fill sets every element of data to v.
//
//kylix:hotpath
func Fill(data []float32, v float32) {
	for i := range data {
		data[i] = v
	}
}
