package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// TestFP16RoundTripAllHalves widens every one of the 65536 binary16
// bit patterns to float32 and narrows it back: the conversion pair must
// be the exact identity on representable values (NaN maps to the
// canonical quiet NaN, which is the one non-bijective case).
func TestFP16RoundTripAllHalves(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		f := FP16BitsToFloat32(uint16(h))
		got := Float32ToFP16Bits(f)
		exp := uint16(h) >> 10 & 0x1f
		man := uint16(h) & 0x3ff
		if exp == 31 && man != 0 { // NaN: kind preserved, payload canonicalized
			if !math.IsNaN(float64(f)) {
				t.Fatalf("half NaN %#04x widened to %v, want NaN", h, f)
			}
			if got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
				t.Fatalf("half NaN %#04x re-narrowed to %#04x, want a NaN", h, got)
			}
			continue
		}
		if got != uint16(h) {
			t.Fatalf("half %#04x -> %v -> %#04x, not identity", h, f, got)
		}
	}
}

// TestFP16WidenValues spot-checks the widening against hand-computed
// values across normals, subnormals, zeros and infinities.
func TestFP16WidenValues(t *testing.T) {
	cases := []struct {
		h    uint16
		want float32
	}{
		{0x0000, 0},
		{0x8000, float32(math.Copysign(0, -1))},
		{0x3c00, 1},
		{0xbc00, -1},
		{0x4000, 2},
		{0x3555, 0.33325195},    // nearest half to 1/3
		{0x7bff, 65504},         // largest finite half
		{0x0400, 6.1035156e-05}, // smallest normal, 2^-14
		{0x0001, 5.9604645e-08}, // smallest subnormal, 2^-24
		{0x03ff, 6.0975552e-05}, // largest subnormal
		{0x0200, 3.0517578e-05}, // mid subnormal, 2^-15
		{0x7c00, float32(math.Inf(1))},
		{0xfc00, float32(math.Inf(-1))},
	}
	for _, c := range cases {
		if got := FP16BitsToFloat32(c.h); got != c.want {
			t.Errorf("FP16BitsToFloat32(%#04x) = %v, want %v", c.h, got, c.want)
		}
		// Signed zero keeps its sign bit.
		if c.h == 0x8000 && math.Signbit(float64(FP16BitsToFloat32(c.h))) != true {
			t.Errorf("negative zero lost its sign")
		}
	}
}

// TestFP16NarrowRounding checks round-to-nearest-even at the dropped
// 13 bits, overflow to infinity, and the subnormal/underflow edges.
func TestFP16NarrowRounding(t *testing.T) {
	cases := []struct {
		f    float32
		want uint16
	}{
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},     // largest finite half, exact
		{65520, 0x7c00},     // halfway to overflow: RNE carries to Inf
		{65519.996, 0x7bff}, // just under the halfway point
		{70000, 0x7c00},     // overflow
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{6.1035156e-05, 0x0400}, // 2^-14, smallest normal
		{5.9604645e-08, 0x0001}, // 2^-24, smallest subnormal
		{2.9802322e-08, 0x0000}, // 2^-25: tie to even -> 0
		{4.4703484e-08, 0x0001}, // 0.75*2^-24 rounds up
		{1e-38, 0x0000},         // deep underflow
		{1.0009766, 0x3c01},     // 1 + 2^-10 (one half ULP step), exact
		{1.0004883, 0x3c00},     // 1 + 2^-11: tie to even -> down
		{1.0014648, 0x3c02},     // 1 + 3*2^-11: tie to even -> up
	}
	for _, c := range cases {
		if got := Float32ToFP16Bits(c.f); got != c.want {
			t.Errorf("Float32ToFP16Bits(%v) = %#04x, want %#04x", c.f, got, c.want)
		}
	}
	if h := Float32ToFP16Bits(float32(math.NaN())); h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Errorf("NaN narrowed to %#04x, not a half NaN", h)
	}
	if h := Float32ToFP16Bits(float32(math.Copysign(0, -1))); h != 0x8000 {
		t.Errorf("-0 narrowed to %#04x, want 0x8000", h)
	}
}

// TestFP16NarrowMatchesReference cross-checks the fast narrowing
// against a float64-based reference over random floats: narrowing f is
// the binary16 value nearest f (ties to even), which the reference
// finds by widening both neighbour candidates.
func TestFP16NarrowMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200000; trial++ {
		f := math.Float32frombits(rng.Uint32())
		if math.IsNaN(float64(f)) {
			continue
		}
		got := FP16BitsToFloat32(Float32ToFP16Bits(f))
		// The round-trip must be the nearest representable half: no
		// other half value may be strictly closer.
		gd := math.Abs(float64(f) - float64(got))
		for delta := -2; delta <= 2; delta++ {
			h := int(Float32ToFP16Bits(f)) + delta
			if h < 0 || h > 0xffff {
				continue
			}
			alt := FP16BitsToFloat32(uint16(h))
			if math.IsNaN(float64(alt)) || math.IsInf(float64(alt), 0) != math.IsInf(float64(got), 0) {
				continue
			}
			if ad := math.Abs(float64(f) - float64(alt)); ad < gd {
				t.Fatalf("f=%v: rounded to %v (err %g) but %v is closer (err %g)", f, got, gd, alt, ad)
			}
		}
	}
}

// TestQuantizeFP16Block round-trips a block through the vectorized
// kernels, with and without residuals.
func TestQuantizeFP16Block(t *testing.T) {
	vals := []float32{0, 1, -1, 0.5, 3.14159, -65504, 1e-7, 42.42, 7, -0.25, 1000, 0.1, 9}
	dst := make([]byte, QuantizedSize(QuantFP16, len(vals)))
	QuantizeFP16(dst, vals, nil)
	dec := make([]float32, len(vals))
	DequantizeFP16(dec, dst)
	for j, v := range vals {
		want := FP16BitsToFloat32(Float32ToFP16Bits(v))
		if dec[j] != want {
			t.Errorf("vals[%d]=%v decoded %v, want %v", j, v, dec[j], want)
		}
	}
	// With residuals: res accumulates exactly x - dequant(x).
	res := make([]float32, len(vals))
	QuantizeFP16(dst, vals, res)
	DequantizeFP16(dec, dst)
	for j, v := range vals {
		if got := dec[j] + res[j]; got != v {
			t.Errorf("vals[%d]=%v: dequant %v + residual %v = %v, want exact split", j, v, dec[j], res[j], got)
		}
	}
}

// TestQuantizeINT8Block checks scale selection, bounded error and the
// residual identity of the int8 kernel.
func TestQuantizeINT8Block(t *testing.T) {
	vals := []float32{0, 12.7, -12.7, 127, -127, 63.5, 1, -1, 0.05, 99.9, -3.3}
	dst := make([]byte, QuantizedSize(QuantINT8, len(vals)))
	res := make([]float32, len(vals))
	QuantizeINT8(dst, vals, res)
	dec := make([]float32, len(vals))
	DequantizeINT8(dec, dst)
	scale := float32(127.0 / 127.0) // maxabs = 127
	for j, v := range vals {
		if abs32(dec[j]-v) > scale/2+1e-6 {
			t.Errorf("vals[%d]=%v decoded %v, error beyond scale/2", j, v, dec[j])
		}
		if got := dec[j] + res[j]; got != v {
			t.Errorf("vals[%d]=%v: dequant %v + residual %v != value", j, v, dec[j], res[j])
		}
	}
	// Extremes hit the full code range.
	if dec[3] != 127 || dec[4] != -127 {
		t.Errorf("extremes decoded %v / %v, want +-127", dec[3], dec[4])
	}
	// All-zero block: scale 0, bytes 0.
	zeros := make([]float32, 5)
	zdst := make([]byte, QuantizedSize(QuantINT8, 5))
	QuantizeINT8(zdst, zeros, nil)
	zdec := make([]float32, 5)
	DequantizeINT8(zdec, zdst)
	for j, v := range zdec {
		if v != 0 {
			t.Errorf("zero block decoded %v at %d", v, j)
		}
	}
}

// TestErrorFeedbackConverges is the kernel-level accumulation property:
// a value far below the int8 quantization step contributes nothing per
// round without feedback, but with the residual the delivered sum over
// R rounds tracks R*value to within one quantization step.
func TestErrorFeedbackConverges(t *testing.T) {
	const rounds = 400
	// One dominant value fixes scale = 127/127 = 1; the tiny value 0.01
	// is far below the 0.5 rounding threshold.
	vals := []float32{127, 0.01}
	dst := make([]byte, QuantizedSize(QuantINT8, len(vals)))
	dec := make([]float32, len(vals))

	var naiveSum, efSum float64
	res := make([]float32, len(vals))
	for r := 0; r < rounds; r++ {
		QuantizeINT8(dst, vals, nil)
		DequantizeINT8(dec, dst)
		naiveSum += float64(dec[1])

		QuantizeINT8(dst, vals, res)
		DequantizeINT8(dec, dst)
		efSum += float64(dec[1])
	}
	want := float64(rounds) * 0.01
	if naiveSum != 0 {
		t.Fatalf("naive truncation delivered %v, expected it to lose the value entirely", naiveSum)
	}
	if math.Abs(efSum-want) > 1.5 { // within ~one quantization step of the true mass
		t.Fatalf("error feedback delivered %v over %d rounds, want ~%v", efSum, rounds, want)
	}
}

// TestQuantizeDeterministic: the encode kernels are pure functions of
// the input bits — two identical runs produce identical bytes and
// identical residual evolutions.
func TestQuantizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float32, 257)
	for j := range vals {
		vals[j] = (rng.Float32() - 0.5) * 200
	}
	for _, q := range []Quantization{QuantFP16, QuantINT8} {
		d1 := make([]byte, QuantizedSize(q, len(vals)))
		d2 := make([]byte, QuantizedSize(q, len(vals)))
		r1 := make([]float32, len(vals))
		r2 := make([]float32, len(vals))
		for round := 0; round < 5; round++ {
			Quantize(q, d1, vals, r1)
			Quantize(q, d2, vals, r2)
			if string(d1) != string(d2) {
				t.Fatalf("%v: round %d encodings differ", q, round)
			}
			if ValuesDigest(r1) != ValuesDigest(r2) {
				t.Fatalf("%v: round %d residuals differ", q, round)
			}
		}
	}
}

// TestQuantizationParse round-trips the mode names.
func TestQuantizationParse(t *testing.T) {
	for _, q := range []Quantization{QuantOff, QuantFP16, QuantINT8} {
		got, err := ParseQuantization(q.String())
		if err != nil || got != q {
			t.Errorf("ParseQuantization(%q) = %v, %v", q.String(), got, err)
		}
	}
	if _, err := ParseQuantization("fp8"); err == nil {
		t.Errorf("ParseQuantization accepted fp8")
	}
	if q, err := ParseQuantization(""); err != nil || q != QuantOff {
		t.Errorf("empty mode should parse as off")
	}
}

// TestValuesDigest: equal vectors agree, different bits disagree, and
// the signed-zero distinction is visible (bit-level, not value-level).
func TestValuesDigest(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{1, 2, 3}
	if ValuesDigest(a) != ValuesDigest(b) {
		t.Fatal("equal vectors digest differently")
	}
	b[2] = 3.0000002
	if ValuesDigest(a) == ValuesDigest(b) {
		t.Fatal("different vectors digest equal")
	}
	z := []float32{0}
	nz := []float32{float32(math.Copysign(0, -1))}
	if ValuesDigest(z) == ValuesDigest(nz) {
		t.Fatal("digest is not bit-level: +0 and -0 collide")
	}
}

func BenchmarkQuantizeFP16(b *testing.B) {
	vals := make([]float32, 4096)
	for j := range vals {
		vals[j] = float32(j%255) * 0.25
	}
	res := make([]float32, len(vals))
	dst := make([]byte, QuantizedSize(QuantFP16, len(vals)))
	b.SetBytes(int64(4 * len(vals)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QuantizeFP16(dst, vals, res)
	}
}

func BenchmarkDequantizeFP16(b *testing.B) {
	vals := make([]float32, 4096)
	for j := range vals {
		vals[j] = float32(j%255) * 0.25
	}
	src := make([]byte, QuantizedSize(QuantFP16, len(vals)))
	QuantizeFP16(src, vals, nil)
	dst := make([]float32, len(vals))
	b.SetBytes(int64(4 * len(vals)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DequantizeFP16(dst, src)
	}
}

func BenchmarkQuantizeINT8(b *testing.B) {
	vals := make([]float32, 4096)
	for j := range vals {
		vals[j] = float32(j%255) - 127
	}
	res := make([]float32, len(vals))
	dst := make([]byte, QuantizedSize(QuantINT8, len(vals)))
	b.SetBytes(int64(4 * len(vals)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QuantizeINT8(dst, vals, res)
	}
}

func BenchmarkDequantizeINT8(b *testing.B) {
	vals := make([]float32, 4096)
	for j := range vals {
		vals[j] = float32(j%255) - 127
	}
	src := make([]byte, QuantizedSize(QuantINT8, len(vals)))
	QuantizeINT8(src, vals, nil)
	dst := make([]float32, len(vals))
	b.SetBytes(int64(4 * len(vals)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DequantizeINT8(dst, src)
	}
}
