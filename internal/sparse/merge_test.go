package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSet(rng *rand.Rand, n, space int32) Set {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = rng.Int31n(space)
	}
	return MustNewSet(idx)
}

func TestMerge2Basic(t *testing.T) {
	a := MustNewSet([]int32{1, 3, 5})
	b := MustNewSet([]int32{2, 3, 6})
	u := Merge2(a, b)
	want := MustNewSet([]int32{1, 2, 3, 5, 6})
	if !u.Equal(want) {
		t.Fatalf("Merge2 = %v, want %v", u.Indices(), want.Indices())
	}
}

func TestMerge2Empty(t *testing.T) {
	a := MustNewSet([]int32{1, 2})
	if u := Merge2(a, nil); !u.Equal(a) {
		t.Error("merge with empty right")
	}
	if u := Merge2(nil, a); !u.Equal(a) {
		t.Error("merge with empty left")
	}
	if u := Merge2(nil, nil); len(u) != 0 {
		t.Error("merge of empties")
	}
}

func TestTreeUnionMatchesHashUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(9)
		sets := make([]Set, k)
		for i := range sets {
			sets[i] = randomSet(rng, rng.Int31n(200), 300)
		}
		tu := TreeUnion(sets)
		hu := HashUnion(sets)
		if !tu.Equal(hu) {
			t.Fatalf("trial %d: tree union %d keys, hash union %d keys", trial, len(tu), len(hu))
		}
		if !tu.IsSorted() {
			t.Fatal("tree union not sorted")
		}
	}
}

func TestTreeUnionDoesNotAliasInputs(t *testing.T) {
	a := MustNewSet([]int32{1, 2, 3})
	u := TreeUnion([]Set{a})
	u[0] = MakeKey(42)
	if a.Contains(MakeKey(42)) {
		t.Fatal("TreeUnion of single set aliases its input")
	}
}

func TestPositionMap(t *testing.T) {
	union := MustNewSet([]int32{1, 2, 3, 4, 5})
	sub := MustNewSet([]int32{2, 4})
	m, err := PositionMap(sub, union)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range sub {
		if union[m[i]] != k {
			t.Errorf("map slot %d wrong", i)
		}
	}
}

func TestPositionMapMissing(t *testing.T) {
	union := MustNewSet([]int32{1, 3})
	sub := MustNewSet([]int32{1, 2})
	if _, err := PositionMap(sub, union); err == nil {
		t.Fatal("want error for missing key")
	}
}

func TestPartialPositionMap(t *testing.T) {
	union := MustNewSet([]int32{1, 3, 5})
	sub := MustNewSet([]int32{1, 2, 5, 7})
	m, missing := PartialPositionMap(sub, union)
	if missing != 2 {
		t.Fatalf("missing = %d, want 2", missing)
	}
	for i, k := range sub {
		if m[i] >= 0 && union[m[i]] != k {
			t.Errorf("slot %d maps to wrong key", i)
		}
		if m[i] < 0 && union.Contains(k) {
			t.Errorf("slot %d reported missing but present", i)
		}
	}
}

func TestUnionWithMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := make([]Set, 6)
	for i := range sets {
		sets[i] = randomSet(rng, 50, 100)
	}
	union, maps := UnionWithMaps(sets)
	for i, s := range sets {
		for j, k := range s {
			if union[maps[i][j]] != k {
				t.Fatalf("set %d slot %d mapped to wrong union slot", i, j)
			}
		}
	}
	// Union must be exactly the set of all keys.
	if !union.Equal(HashUnion(sets)) {
		t.Fatal("union differs from oracle")
	}
}

func TestHashUnionWithMaps(t *testing.T) {
	sets := []Set{MustNewSet([]int32{1, 2}), MustNewSet([]int32{2, 3})}
	union, maps := HashUnionWithMaps(sets)
	if len(union) != 3 {
		t.Fatalf("union size %d, want 3", len(union))
	}
	for i, s := range sets {
		for j, k := range s {
			if union[maps[i][j]] != k {
				t.Fatalf("hash maps wrong at set %d slot %d", i, j)
			}
		}
	}
}

// Property: union algebra — TreeUnion is idempotent, commutative (as a
// set), and every input is a subset of the union.
func TestTreeUnionProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		toSet := func(raw []uint16) Set {
			idx := make([]int32, len(raw))
			for i, r := range raw {
				idx[i] = int32(r)
			}
			return MustNewSet(idx)
		}
		a, b := toSet(xs), toSet(ys)
		u1 := TreeUnion([]Set{a, b})
		u2 := TreeUnion([]Set{b, a})
		if !u1.Equal(u2) {
			return false
		}
		if !a.Subset(u1) || !b.Subset(u1) {
			return false
		}
		return TreeUnion([]Set{u1, a}).Equal(u1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSet(rng, 1000, 1<<30)
	r := FullRange()
	for _, d := range []int{1, 2, 4, 8} {
		off := SplitOffsets(s, r, d)
		if off[0] != 0 || off[d] != int32(len(s)) {
			t.Fatalf("d=%d offsets do not cover set", d)
		}
		for tt := 0; tt < d; tt++ {
			piece := Piece(s, off, tt)
			sub := r.Sub(d, tt)
			if err := CheckInRange(piece, sub); err != nil {
				t.Fatalf("d=%d piece %d: %v", d, tt, err)
			}
		}
	}
}

func TestSplitOffsetsBalance(t *testing.T) {
	// Hash partitioning should balance even adversarial (dense
	// consecutive) index distributions.
	idx := make([]int32, 1<<14)
	for i := range idx {
		idx[i] = int32(i)
	}
	s := MustNewSet(idx)
	off := SplitOffsets(s, FullRange(), 8)
	for tt := 0; tt < 8; tt++ {
		n := int(off[tt+1] - off[tt])
		if n < len(s)/8-len(s)/32 || n > len(s)/8+len(s)/32 {
			t.Fatalf("piece %d badly unbalanced: %d of %d", tt, n, len(s))
		}
	}
}

func TestCheckInRange(t *testing.T) {
	s := MustNewSet([]int32{1, 2, 3})
	if err := CheckInRange(s, FullRange()); err != nil {
		t.Fatal(err)
	}
	narrow := Range{s[1], s[2]}
	if err := CheckInRange(s, narrow); err == nil {
		t.Fatal("want range violation")
	}
	if err := CheckInRange(nil, narrow); err != nil {
		t.Fatal("empty set should fit any range")
	}
}
