// Package sparse provides the sparse index-set and value-vector machinery
// underlying the Kylix sparse allreduce: hash-ordered keys, sorted index
// sets, merges that produce position maps (the f and g maps of the paper's
// Section III-A), tree merging (Section VI-A), hash-range partitioning,
// and strided value kernels (gather, scatter, sum-into).
//
// Feature indices are carried as Keys: the upper 32 bits hold a strong
// hash of the index and the lower 32 bits hold the index itself. Sets are
// kept sorted by Key. This gives three properties the protocol relies on:
//
//  1. Equal indices are adjacent, so duplicate collapse falls out of a
//     linear merge.
//  2. Splitting a sorted set at hash boundaries partitions the feature
//     space into statistically balanced ranges even for power-law data
//     ("the original indices are hashed to the values used for
//     partitioning" — Kylix §III-A).
//  3. The pieces a node receives from its butterfly neighbours arrive
//     pre-sorted and span the same hash range, so unions are linear
//     merges rather than hash-table inserts.
//
//kylix:deterministic
package sparse

// Key packs hash32(index) in the upper 32 bits and the index in the lower
// 32 bits. Keys compare first by hash, then by index; two Keys are equal
// exactly when their indices are equal.
type Key uint64

// MakeKey builds the Key for a feature index. Indices must be
// non-negative and fit in 32 bits.
func MakeKey(index int32) Key {
	return Key(uint64(hash32(uint32(index)))<<32 | uint64(uint32(index)))
}

// Index recovers the feature index from a Key.
func (k Key) Index() int32 { return int32(uint32(k)) }

// Hash returns the 32-bit hash half of the Key.
func (k Key) Hash() uint32 { return uint32(k >> 32) }

// hash32 is a 32-bit finalizer-style mixer (Murmur3 fmix32). It is a
// bijection on uint32, so distinct indices never collide into the same
// Key even when their hashes collide (the index low bits disambiguate).
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Range is a half-open interval [Lo, Hi) over the full Key space.
// Partitioning is always done on hash boundaries: a boundary at hash h
// corresponds to Key(h)<<32.
type Range struct {
	Lo, Hi Key
}

// fullHi is the exclusive upper bound of the key space. The true
// supremum 2^64 is not representable in a Key, but the largest Key a
// non-negative int32 index can produce is 0xFFFFFFFF_7FFFFFFF, so the
// maximum uint64 value is a safe exclusive bound.
const fullHi = Key(^uint64(0))

// FullRange covers the entire key space.
func FullRange() Range { return Range{0, fullHi} }

// Contains reports whether k lies in r.
func (r Range) Contains(k Key) bool { return k >= r.Lo && k < r.Hi }

// Sub splits r into d equal sub-ranges on hash boundaries and returns the
// t-th (0-based). Boundaries are computed in the 2^32 hash space scaled
// to keys, matching the equal-size index ranges of §III-A.
func (r Range) Sub(d, t int) Range {
	if d <= 0 || t < 0 || t >= d {
		panic("sparse: Range.Sub out of bounds")
	}
	span := uint64(r.Hi-r.Lo) / uint64(d)
	lo := r.Lo + Key(span*uint64(t))
	hi := r.Lo + Key(span*uint64(t+1))
	if t == d-1 {
		hi = r.Hi
	}
	return Range{lo, hi}
}
