package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func codecRoundTrip(t *testing.T, s Set) []byte {
	t.Helper()
	buf := AppendCompressed(nil, s)
	got, rest, err := DecodeCompressed(nil, buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d unconsumed bytes", len(rest))
	}
	if !got.Equal(s) {
		t.Fatalf("round trip mismatch: got %d keys, want %d", len(got), len(s))
	}
	// Canonical encoder: re-encoding the decoded set is byte-identical.
	if again := AppendCompressed(nil, got); string(again) != string(buf) {
		t.Fatalf("re-encode not byte-identical")
	}
	return buf
}

func TestCodecEdgeCases(t *testing.T) {
	dense := make([]int32, 10000)
	for i := range dense {
		dense[i] = int32(i + 7)
	}
	alternating := make([]int32, 0, 4096)
	for x := int32(0); len(alternating) < 4096; x += 2 + x%3 {
		alternating = append(alternating, x)
	}
	cases := []struct {
		name string
		idx  []int32
		// maxBytes, when >0, asserts a compression bound.
		maxBytes int
	}{
		{"empty", nil, 1},
		{"single key", []int32{12345}, 0},
		{"single zero", []int32{0}, 2},
		{"max index", []int32{math.MaxInt32}, 0},
		{"min and max", []int32{0, math.MaxInt32}, 0},
		{"long dense run", dense, 16}, // ~10k keys in a handful of bytes
		{"adversarial alternating gaps", alternating, 2 + 5 + len(alternating)},
		{"pair adjacent", []int32{41, 42}, 0},
		{"gap of two", []int32{10, 12}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := codecRoundTrip(t, MustNewSet(tc.idx))
			if tc.maxBytes > 0 && len(buf) > tc.maxBytes {
				t.Fatalf("encoded %d keys into %d bytes, want <= %d", len(tc.idx), len(buf), tc.maxBytes)
			}
		})
	}
}

func TestCodecAppendsToDst(t *testing.T) {
	a := MustNewSet([]int32{5, 9, 100})
	b := MustNewSet([]int32{6, 7, 8})
	buf := AppendCompressed(nil, a)
	buf = AppendCompressed(buf, b)
	gotA, rest, err := DecodeCompressed(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := DecodeCompressed(nil, rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !gotA.Equal(a) || !gotB.Equal(b) {
		t.Fatal("concatenated blocks did not round-trip")
	}
	// Decoding into a non-empty dst appends after the existing keys.
	combined, _, err := DecodeCompressed(gotA, AppendCompressed(nil, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(combined) != len(a)+len(b) {
		t.Fatalf("append decode produced %d keys", len(combined))
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	valid := AppendCompressed(nil, MustNewSet([]int32{1, 2, 3, 100, 2000}))
	cases := map[string][]byte{
		"empty input":     {},
		"truncated count": {0x80},
		"missing first":   {5},
		"truncated token": valid[:len(valid)-1],
		"empty run token": {2, 0, 1},
		"run overflow":    {2, 0, 9},                          // run of 4 but count says 2
		"count too large": {0xFF, 0xFF, 0xFF, 0xFF, 0x7F},     // ~34e9 keys
	}
	// Index overflow: first = MaxInt32, then a gap token pushes past it.
	overflow := AppendCompressed(nil, MustNewSet([]int32{math.MaxInt32}))
	overflow[0] = 2 // claim two keys
	overflow = append(overflow, 0) // gap of 2 beyond MaxInt32
	cases["index overflow"] = overflow
	for name, buf := range cases {
		if _, _, err := DecodeCompressed(nil, buf); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
	// Every strict prefix of a valid encoding fails or under-delivers.
	for cut := 0; cut < len(valid); cut++ {
		got, rest, err := DecodeCompressed(nil, valid[:cut])
		if err == nil && len(rest) == 0 && len(got) == 5 {
			t.Errorf("prefix %d decoded to the full set", cut)
		}
	}
}

// FuzzKeysCodec round-trips arbitrary index sets and hammers the
// decoder with arbitrary bytes. Properties: encode→decode is lossless,
// re-encode is byte-identical (canonical form), and no input makes the
// decoder panic or return an out-of-range index.
func FuzzKeysCodec(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3, 4, 250, 251, 252}, []byte{2, 0, 1})
	f.Add([]byte{0, 0, 0, 0}, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, raw []byte, wire []byte) {
		// Part 1: round-trip a set derived from raw (pairs of bytes →
		// indices, occasionally stretched into dense runs).
		idx := make([]int32, 0, len(raw))
		for i := 0; i+1 < len(raw); i += 2 {
			base := int32(raw[i])<<8 | int32(raw[i+1])
			idx = append(idx, base)
			if raw[i]%5 == 0 { // seed a dense run
				for j := int32(1); j < int32(raw[i+1]%17); j++ {
					idx = append(idx, base+j)
				}
			}
		}
		s := MustNewSet(idx)
		buf := AppendCompressed(nil, s)
		got, rest, err := DecodeCompressed(nil, buf)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if len(rest) != 0 || !got.Equal(s) {
			t.Fatalf("round trip mismatch (%d keys in, %d out, %d rest)", len(s), len(got), len(rest))
		}
		if again := AppendCompressed(nil, got); string(again) != string(buf) {
			t.Fatal("re-encode not canonical")
		}
		// Part 2: the decoder must survive arbitrary bytes — error or
		// valid Set, never a panic, never an invalid key.
		got, _, err = DecodeCompressed(nil, wire)
		if err == nil {
			if !got.IsSorted() {
				t.Fatal("decoder produced unsorted set from arbitrary bytes")
			}
			for _, k := range got {
				if k != MakeKey(k.Index()) {
					t.Fatal("decoder produced hash-inconsistent key")
				}
			}
		}
	})
}

func benchmarkCodecSet(density int) Set {
	rng := rand.New(rand.NewSource(7))
	idx := make([]int32, 0, 4096)
	x := int32(0)
	for len(idx) < 4096 {
		x += 1 + int32(rng.Intn(density))
		idx = append(idx, x)
	}
	return MustNewSet(idx)
}

func BenchmarkKeysCodec(b *testing.B) {
	for _, bc := range []struct {
		name    string
		density int
	}{{"dense", 1}, {"eighth", 15}, {"sparse", 200}} {
		s := benchmarkCodecSet(bc.density)
		enc := AppendCompressed(nil, s)
		b.Run("encode/"+bc.name, func(b *testing.B) {
			b.SetBytes(int64(8 * len(s)))
			b.ReportAllocs()
			buf := make([]byte, 0, len(enc))
			for i := 0; i < b.N; i++ {
				buf = AppendCompressed(buf[:0], s)
			}
			b.ReportMetric(float64(8*len(s))/float64(len(enc)), "compression-x")
		})
		b.Run("decode/"+bc.name, func(b *testing.B) {
			b.SetBytes(int64(8 * len(s)))
			b.ReportAllocs()
			dst := make(Set, 0, len(s))
			for i := 0; i < b.N; i++ {
				var err error
				dst, _, err = DecodeCompressed(dst[:0], enc)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
