package sparse

import "fmt"

// Merge2 returns the sorted, deduplicated union of two Sets.
func Merge2(a, b Set) Set {
	out := make(Set, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// TreeUnion computes the union of many Sets by recursively merging
// siblings in a balanced binary tree (Kylix §VI-A). Pairwise merging
// keeps both operands of every merge approximately equal in length,
// which is what makes merge-based unions beat hash tables: the cost of
// a merge is the length of the longer sequence.
func TreeUnion(sets []Set) Set {
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return sets[0].Clone()
	}
	// Bottom-up rounds: merge neighbours until one set remains. Each
	// round halves the count, so inputs of similar size meet inputs of
	// similar size.
	cur := make([]Set, len(sets))
	copy(cur, sets)
	for len(cur) > 1 {
		next := cur[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, Merge2(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// PositionMap returns, for each key of sub, its position in union. Both
// Sets must be sorted. These are the f and g maps of Kylix §III-A: they
// let the reduction pass add incoming values into the union accumulator,
// and the allgather pass extract outgoing values, in constant time per
// element. An error is returned if sub contains a key missing from union.
func PositionMap(sub, union Set) ([]int32, error) {
	m := make([]int32, len(sub))
	j := 0
	for i, k := range sub {
		for j < len(union) && union[j] < k {
			j++
		}
		if j >= len(union) || union[j] != k {
			return nil, fmt.Errorf("sparse: key %d (index %d) not present in union", uint64(k), k.Index())
		}
		m[i] = int32(j)
	}
	return m, nil
}

// PartialPositionMap is PositionMap for the case where sub may contain
// keys absent from union; absent keys map to -1. The second return value
// counts the missing keys.
func PartialPositionMap(sub, union Set) ([]int32, int) {
	m := make([]int32, len(sub))
	missing := 0
	j := 0
	for i, k := range sub {
		for j < len(union) && union[j] < k {
			j++
		}
		if j < len(union) && union[j] == k {
			m[i] = int32(j)
		} else {
			m[i] = -1
			missing++
		}
	}
	return m, missing
}

// UnionWithMaps computes the tree union of the inputs and a position map
// from each input into the union. This is the workhorse of the Kylix
// configuration pass: a node unions the index sets received from its
// layer neighbours and keeps one map per neighbour for later reduction.
func UnionWithMaps(sets []Set) (Set, [][]int32) {
	union := TreeUnion(sets)
	maps := make([][]int32, len(sets))
	for i, s := range sets {
		m, err := PositionMap(s, union)
		if err != nil {
			// Impossible: union contains every input by construction.
			panic("sparse: UnionWithMaps lost a key: " + err.Error())
		}
		maps[i] = m
	}
	return union, maps
}
