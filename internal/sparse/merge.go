package sparse

import "fmt"

// Merge2 returns the sorted, deduplicated union of two Sets.
func Merge2(a, b Set) Set {
	if len(a) == 0 {
		return b.Clone()
	}
	if len(b) == 0 {
		return a.Clone()
	}
	return mergeInto(make(Set, 0, len(a)+len(b)), a, b)
}

// mergeInto appends the sorted union of a and b to out, which must have
// capacity for len(a)+len(b) more elements (all callers pre-size their
// arenas, so the loop writes by index instead of appending). Empty
// inputs reduce to a single bulk copy.
func mergeInto(out Set, a, b Set) Set {
	if len(a) == 0 {
		return append(out, b...)
	}
	if len(b) == 0 {
		return append(out, a...)
	}
	n := len(out)
	out = out[: n+len(a)+len(b)]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ka, kb := a[i], b[j]
		if ka <= kb {
			out[n] = ka
			n++
			i++
			if ka == kb {
				j++
			}
		} else {
			out[n] = kb
			n++
			j++
		}
	}
	n += copy(out[n:], a[i:])
	n += copy(out[n:], b[j:])
	return out[:n]
}

// TreeUnion computes the union of many Sets by recursively merging
// siblings in a balanced binary tree (Kylix §VI-A). Pairwise merging
// keeps both operands of every merge approximately equal in length,
// which is what makes merge-based unions beat hash tables: the cost of
// a merge is the length of the longer sequence.
//
// Intermediate merge results live in two ping-pong scratch arenas (each
// round's outputs are carved from the arena not holding its inputs), so
// a union of n sets costs two arena allocations instead of one fresh
// slice per pairwise merge.
func TreeUnion(sets []Set) Set {
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return sets[0].Clone()
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total == 0 {
		return Set{}
	}
	arenas := [2]Set{make(Set, 0, total), make(Set, 0, total)}
	gen := 0
	// Bottom-up rounds: merge neighbours until one set remains. Each
	// round halves the count, so inputs of similar size meet inputs of
	// similar size.
	cur := make([]Set, len(sets))
	copy(cur, sets)
	for len(cur) > 1 {
		free := arenas[gen][:0]
		gen = 1 - gen
		next := cur[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			merged := mergeInto(free, cur[i], cur[i+1])
			free = merged[len(merged):]
			next = append(next, merged)
		}
		if len(cur)%2 == 1 {
			// Copy the odd leftover into this round's arena as well, so
			// every round reads exclusively from the previous generation
			// and writes exclusively into the current one — a leftover is
			// never read from an arena while it is being overwritten.
			moved := append(free, cur[len(cur)-1]...)
			free = moved[len(moved):]
			next = append(next, moved)
		}
		cur = next
	}
	// The result is a prefix of one arena; clone it when it pins far more
	// backing memory than it uses (callers keep unions alive long-term).
	if len(cur[0])*2 < total {
		return cur[0].Clone()
	}
	return cur[0]
}

// UnionScratch is a reusable arena for repeated tree unions. It holds
// the two ping-pong merge arenas and the work list that TreeUnion would
// otherwise allocate per call, grown to the largest union seen and then
// reused. The zero value is ready to use.
//
// Union's result aliases one of the arenas (or, for a single input, the
// input itself): it is valid only until the next Union call on the same
// scratch. Callers that retain the union must Clone it first — which is
// exactly what the configuration pass does, cloning only the final
// deduplicated union instead of paying per-merge allocations.
type UnionScratch struct {
	arenas [2]Set
	work   []Set
	// UnionMaps state: per-pair-merge position maps (into the pair's
	// union) and the input-range boundary of each tree node.
	pairMaps []int32
	spanHi   []int32
}

// Union computes the tree union of sets into the scratch arenas. See
// TreeUnion for the merge strategy; this variant trades the fresh
// result slice for arena reuse.
func (u *UnionScratch) Union(sets []Set) Set {
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return sets[0]
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total == 0 {
		return Set{}
	}
	for g := range u.arenas {
		if cap(u.arenas[g]) < total {
			u.arenas[g] = make(Set, 0, total)
		}
	}
	if cap(u.work) < len(sets) {
		u.work = make([]Set, 0, len(sets))
	}
	u.work = append(u.work[:0], sets...)
	cur := u.work
	gen := 0
	for len(cur) > 1 {
		free := u.arenas[gen][:0]
		gen = 1 - gen
		next := cur[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			merged := mergeInto(free, cur[i], cur[i+1])
			free = merged[len(merged):]
			next = append(next, merged)
		}
		if len(cur)%2 == 1 {
			// Copy the odd leftover forward so every round reads only the
			// previous generation (see TreeUnion).
			moved := append(free, cur[len(cur)-1]...)
			free = moved[len(moved):]
			next = append(next, moved)
		}
		cur = next
	}
	return cur[0]
}

// UnionMaps computes the union of sets and, in the same single pass,
// the position map of every input into the union: maps[t][i] becomes
// the union position of sets[t][i]. maps[t] must have len(sets[t])
// entries. The result aliases a scratch arena (or, for a single input,
// that input) and is valid only until the next Union/UnionMaps call on
// the same scratch; callers that retain it must Clone.
//
// The merge is the same balanced pairwise tree as TreeUnion, with each
// pair merge also emitting position maps into the pair union; after a
// merge, the maps of every original input under either side are
// composed with the pair map in place. Every level costs one
// cache-friendly two-pointer merge plus one sequential composition pass
// over the T map entries, so the whole job is O(T log d) with
// predictable branches — measurably faster here than a d-way tournament
// (loser tree), whose per-element root-to-leaf replay branch-misses on
// random keys.
func (u *UnionScratch) UnionMaps(sets []Set, maps [][]int32) Set {
	k := len(sets)
	switch k {
	case 0:
		return nil
	case 1:
		m := maps[0]
		for i := range m {
			m[i] = int32(i)
		}
		return sets[0]
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if cap(u.arenas[0]) < total {
		u.arenas[0] = make(Set, 0, total)
	}
	if k == 2 {
		// Binary groups are common enough (every degree-2 layer) to
		// deserve the no-composition direct path.
		return u.unionMaps2(sets[0], sets[1], maps[0], maps[1], total)
	}
	if cap(u.arenas[1]) < total {
		u.arenas[1] = make(Set, 0, total)
	}
	if cap(u.pairMaps) < total {
		u.pairMaps = make([]int32, total)
	}
	if cap(u.work) < k {
		u.work = make([]Set, 0, k)
	}
	if cap(u.spanHi) < k {
		u.spanHi = make([]int32, 0, k)
	}

	// Level 0 merges the original inputs pairwise, writing their maps
	// directly (composition with an identity map is a copy, so skip it).
	// spanHi[j] tracks which original inputs tree node j covers: node j
	// spans inputs [spanHi[j-1], spanHi[j]).
	cur := u.work[:0]
	spanHi := u.spanHi[:0]
	free := u.arenas[0][:0]
	for i := 0; i+1 < k; i += 2 {
		merged := mergeMaps2Into(free, sets[i], sets[i+1], maps[i], maps[i+1])
		free = merged[len(merged):]
		cur = append(cur, merged)
		spanHi = append(spanHi, int32(i+2))
	}
	if k%2 == 1 {
		// The odd leftover is carried as-is; its map must still be the
		// identity for later composition levels to index.
		m := maps[k-1]
		for i := range m {
			m[i] = int32(i)
		}
		moved := append(free, sets[k-1]...)
		cur = append(cur, moved)
		spanHi = append(spanHi, int32(k))
	}

	// Upper levels: merge neighbouring nodes into the other arena and
	// fold the pair maps into every covered input's map. Map values are
	// node-relative positions throughout, so the final level leaves
	// absolute union positions.
	gen := 1
	for len(cur) > 1 {
		free := u.arenas[gen][:0]
		gen = 1 - gen
		next := cur[:0]
		nextHi := spanHi[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			a, b := cur[i], cur[i+1]
			pa := u.pairMaps[:len(a)]
			pb := u.pairMaps[len(a) : len(a)+len(b)]
			merged := mergeMaps2Into(free, a, b, pa, pb)
			free = merged[len(merged):]
			lo := int32(0)
			if i > 0 {
				lo = spanHi[i-1]
			}
			for t := lo; t < spanHi[i]; t++ {
				m := maps[t]
				for x := range m {
					m[x] = pa[m[x]]
				}
			}
			for t := spanHi[i]; t < spanHi[i+1]; t++ {
				m := maps[t]
				for x := range m {
					m[x] = pb[m[x]]
				}
			}
			next = append(next, merged)
			nextHi = append(nextHi, spanHi[i+1])
		}
		if len(cur)%2 == 1 {
			// Carry the odd leftover into this level's arena (ping-pong
			// discipline, see TreeUnion); its maps stay valid as-is.
			moved := append(free, cur[len(cur)-1]...)
			free = moved[len(moved):]
			next = append(next, moved)
			nextHi = append(nextHi, spanHi[len(spanHi)-1])
		}
		cur = next
		spanHi = nextHi
	}
	return cur[0]
}

// mergeMaps2Into appends the sorted union of a and b to out (which must
// have capacity, like mergeInto) and records each input's position map
// relative to the appended union: ma[i]/mb[j] get the union-local
// positions of a[i]/b[j].
func mergeMaps2Into(out Set, a, b Set, ma, mb []int32) Set {
	base := len(out)
	out = out[: base+len(a)+len(b)]
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		ka, kb := a[i], b[j]
		if ka <= kb {
			out[base+n] = ka
			ma[i] = int32(n)
			i++
			if ka == kb {
				mb[j] = int32(n)
				j++
			}
			n++
		} else {
			out[base+n] = kb
			mb[j] = int32(n)
			j++
			n++
		}
	}
	for ; i < len(a); i++ {
		out[base+n] = a[i]
		ma[i] = int32(n)
		n++
	}
	for ; j < len(b); j++ {
		out[base+n] = b[j]
		mb[j] = int32(n)
		n++
	}
	return out[: base+n]
}

// unionMaps2 is UnionMaps' two-input fast path: one merge pass filling
// both maps. The arena has already been sized to total.
func (u *UnionScratch) unionMaps2(a, b Set, ma, mb []int32, total int) Set {
	out := u.arenas[0][:total]
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		ka, kb := a[i], b[j]
		if ka <= kb {
			out[n] = ka
			ma[i] = int32(n)
			i++
			if ka == kb {
				mb[j] = int32(n)
				j++
			}
			n++
		} else {
			out[n] = kb
			mb[j] = int32(n)
			j++
			n++
		}
	}
	for ; i < len(a); i++ {
		out[n] = a[i]
		ma[i] = int32(n)
		n++
	}
	for ; j < len(b); j++ {
		out[n] = b[j]
		mb[j] = int32(n)
		n++
	}
	return out[:n]
}

// PositionMap returns, for each key of sub, its position in union. Both
// Sets must be sorted. These are the f and g maps of Kylix §III-A: they
// let the reduction pass add incoming values into the union accumulator,
// and the allgather pass extract outgoing values, in constant time per
// element. An error is returned if sub contains a key missing from union.
func PositionMap(sub, union Set) ([]int32, error) {
	m := make([]int32, len(sub))
	j := 0
	for i, k := range sub {
		for j < len(union) && union[j] < k {
			j++
		}
		if j >= len(union) || union[j] != k {
			return nil, fmt.Errorf("sparse: key %d (index %d) not present in union", uint64(k), k.Index())
		}
		m[i] = int32(j)
	}
	return m, nil
}

// PositionMapInto is PositionMap writing into a caller-provided map
// slice, which must have len(sub) entries. It lets the configuration
// pass carve all of a layer's maps from one block allocation. Both sets
// are deduplicated, so after a match the cursor advances past it — the
// next sub key is strictly greater.
func PositionMapInto(m []int32, sub, union Set) error {
	j, n := 0, len(union)
	for i, k := range sub {
		for j < n && union[j] < k {
			j++
		}
		if j >= n || union[j] != k {
			return fmt.Errorf("sparse: key %d (index %d) not present in union", uint64(k), k.Index())
		}
		m[i] = int32(j)
		j++
	}
	return nil
}

// PartialPositionMap is PositionMap for the case where sub may contain
// keys absent from union; absent keys map to -1. The second return value
// counts the missing keys.
func PartialPositionMap(sub, union Set) ([]int32, int) {
	m := make([]int32, len(sub))
	missing := 0
	j := 0
	for i, k := range sub {
		for j < len(union) && union[j] < k {
			j++
		}
		if j < len(union) && union[j] == k {
			m[i] = int32(j)
		} else {
			m[i] = -1
			missing++
		}
	}
	return m, missing
}

// UnionWithMaps computes the tree union of the inputs and a position map
// from each input into the union. This is the workhorse of the Kylix
// configuration pass: a node unions the index sets received from its
// layer neighbours and keeps one map per neighbour for later reduction.
func UnionWithMaps(sets []Set) (Set, [][]int32) {
	union := TreeUnion(sets)
	maps := make([][]int32, len(sets))
	for i, s := range sets {
		m, err := PositionMap(s, union)
		if err != nil {
			// Impossible: union contains every input by construction.
			panic("sparse: UnionWithMaps lost a key: " + err.Error())
		}
		maps[i] = m
	}
	return union, maps
}
