package sparse

import "fmt"

// Merge2 returns the sorted, deduplicated union of two Sets.
func Merge2(a, b Set) Set {
	if len(a) == 0 {
		return b.Clone()
	}
	if len(b) == 0 {
		return a.Clone()
	}
	return mergeInto(make(Set, 0, len(a)+len(b)), a, b)
}

// mergeInto appends the sorted union of a and b to out. Empty inputs
// reduce to a single bulk copy.
func mergeInto(out Set, a, b Set) Set {
	if len(a) == 0 {
		return append(out, b...)
	}
	if len(b) == 0 {
		return append(out, a...)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// TreeUnion computes the union of many Sets by recursively merging
// siblings in a balanced binary tree (Kylix §VI-A). Pairwise merging
// keeps both operands of every merge approximately equal in length,
// which is what makes merge-based unions beat hash tables: the cost of
// a merge is the length of the longer sequence.
//
// Intermediate merge results live in two ping-pong scratch arenas (each
// round's outputs are carved from the arena not holding its inputs), so
// a union of n sets costs two arena allocations instead of one fresh
// slice per pairwise merge.
func TreeUnion(sets []Set) Set {
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return sets[0].Clone()
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total == 0 {
		return Set{}
	}
	arenas := [2]Set{make(Set, 0, total), make(Set, 0, total)}
	gen := 0
	// Bottom-up rounds: merge neighbours until one set remains. Each
	// round halves the count, so inputs of similar size meet inputs of
	// similar size.
	cur := make([]Set, len(sets))
	copy(cur, sets)
	for len(cur) > 1 {
		free := arenas[gen][:0]
		gen = 1 - gen
		next := cur[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			merged := mergeInto(free, cur[i], cur[i+1])
			free = merged[len(merged):]
			next = append(next, merged)
		}
		if len(cur)%2 == 1 {
			// Copy the odd leftover into this round's arena as well, so
			// every round reads exclusively from the previous generation
			// and writes exclusively into the current one — a leftover is
			// never read from an arena while it is being overwritten.
			moved := append(free, cur[len(cur)-1]...)
			free = moved[len(moved):]
			next = append(next, moved)
		}
		cur = next
	}
	// The result is a prefix of one arena; clone it when it pins far more
	// backing memory than it uses (callers keep unions alive long-term).
	if len(cur[0])*2 < total {
		return cur[0].Clone()
	}
	return cur[0]
}

// PositionMap returns, for each key of sub, its position in union. Both
// Sets must be sorted. These are the f and g maps of Kylix §III-A: they
// let the reduction pass add incoming values into the union accumulator,
// and the allgather pass extract outgoing values, in constant time per
// element. An error is returned if sub contains a key missing from union.
func PositionMap(sub, union Set) ([]int32, error) {
	m := make([]int32, len(sub))
	j := 0
	for i, k := range sub {
		for j < len(union) && union[j] < k {
			j++
		}
		if j >= len(union) || union[j] != k {
			return nil, fmt.Errorf("sparse: key %d (index %d) not present in union", uint64(k), k.Index())
		}
		m[i] = int32(j)
	}
	return m, nil
}

// PartialPositionMap is PositionMap for the case where sub may contain
// keys absent from union; absent keys map to -1. The second return value
// counts the missing keys.
func PartialPositionMap(sub, union Set) ([]int32, int) {
	m := make([]int32, len(sub))
	missing := 0
	j := 0
	for i, k := range sub {
		for j < len(union) && union[j] < k {
			j++
		}
		if j < len(union) && union[j] == k {
			m[i] = int32(j)
		} else {
			m[i] = -1
			missing++
		}
	}
	return m, missing
}

// UnionWithMaps computes the tree union of the inputs and a position map
// from each input into the union. This is the workhorse of the Kylix
// configuration pass: a node unions the index sets received from its
// layer neighbours and keeps one map per neighbour for later reduction.
func UnionWithMaps(sets []Set) (Set, [][]int32) {
	union := TreeUnion(sets)
	maps := make([][]int32, len(sets))
	for i, s := range sets {
		m, err := PositionMap(s, union)
		if err != nil {
			// Impossible: union contains every input by construction.
			panic("sparse: UnionWithMaps lost a key: " + err.Error())
		}
		maps[i] = m
	}
	return union, maps
}
