package sparse

import "fmt"

// SplitOffsets partitions a sorted Set, known to lie within Range r, into
// d contiguous pieces at equal hash boundaries (Kylix §III-A: "partitioning
// is done into equal-size ranges of indices ... the original indices are
// hashed to the values used for partitioning"). The returned slice has
// d+1 entries: piece t is s[offsets[t]:offsets[t+1]].
//
// Because every Set is sorted by hashed key, each piece is itself a
// sorted Set spanning sub-range r.Sub(d, t), and the pieces collected by
// a receiving node all lie in the same sub-range, maximizing overlap in
// the union below.
func SplitOffsets(s Set, r Range, d int) []int32 {
	return SplitOffsetsInto(make([]int32, d+1), s, r, d)
}

// SplitOffsetsInto is SplitOffsets writing into a caller-provided slice,
// which must have d+1 entries; it returns the same slice.
func SplitOffsetsInto(offsets []int32, s Set, r Range, d int) []int32 {
	offsets[0] = 0
	for t := 1; t < d; t++ {
		sub := r.Sub(d, t)
		offsets[t] = int32(s.LowerBound(sub.Lo))
	}
	offsets[d] = int32(len(s))
	return offsets
}

// CheckInRange verifies that every key of s lies within r. The protocol
// uses it to assert the nested-range invariant: after layer i, a node's
// sets lie entirely within its refined hash range.
func CheckInRange(s Set, r Range) error {
	if len(s) == 0 {
		return nil
	}
	if s[0] < r.Lo || s[len(s)-1] >= r.Hi {
		return fmt.Errorf("sparse: set [%x,%x] escapes range [%x,%x)",
			uint64(s[0]), uint64(s[len(s)-1]), uint64(r.Lo), uint64(r.Hi))
	}
	return nil
}

// Piece returns piece t of a set previously split with SplitOffsets.
func Piece(s Set, offsets []int32, t int) Set {
	return s[offsets[t]:offsets[t+1]]
}
