package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewVecValidate(t *testing.T) {
	keys := MustNewSet([]int32{1, 2, 3})
	v := NewVec(keys, 2)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(v.Data) != 6 {
		t.Fatalf("data length %d, want 6", len(v.Data))
	}
	v.Width = 0
	if err := v.Validate(); err == nil {
		t.Fatal("want error for zero width")
	}
	v.Width = 3
	if err := v.Validate(); err == nil {
		t.Fatal("want error for shape mismatch")
	}
}

func TestVecRow(t *testing.T) {
	v := NewVec(MustNewSet([]int32{1, 2}), 3)
	for i := range v.Data {
		v.Data[i] = float32(i)
	}
	r := v.Row(1)
	if r[0] != 3 || r[2] != 5 {
		t.Fatalf("Row(1) = %v", r)
	}
}

func TestSumCombine(t *testing.T) {
	dst := []float32{1, 2, 3}
	Sum.Combine(dst, []float32{10, 20, 30})
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
		t.Fatalf("sum combine = %v", dst)
	}
}

func TestMaxMinCombine(t *testing.T) {
	dst := []float32{1, 5}
	Max.Combine(dst, []float32{3, 2})
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("max combine = %v", dst)
	}
	dst = []float32{1, 5}
	Min.Combine(dst, []float32{3, 2})
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("min combine = %v", dst)
	}
	if Max.Identity() != float32(math.Inf(-1)) || Min.Identity() != float32(math.Inf(1)) {
		t.Error("wrong identities")
	}
}

func TestOrCombine(t *testing.T) {
	a := math.Float32frombits(0b1010)
	b := math.Float32frombits(0b0110)
	dst := []float32{a}
	Or.Combine(dst, []float32{b})
	if math.Float32bits(dst[0]) != 0b1110 {
		t.Fatalf("or combine bits = %b", math.Float32bits(dst[0]))
	}
	if Or.Identity() != 0 {
		t.Error("or identity should be all-zero bits")
	}
}

func TestReducerNames(t *testing.T) {
	for _, tc := range []struct {
		r    Reducer
		name string
	}{{Sum, "sum"}, {Max, "max"}, {Min, "min"}, {Or, "or"}} {
		if tc.r.Name() != tc.name {
			t.Errorf("reducer name %q, want %q", tc.r.Name(), tc.name)
		}
	}
}

func TestCombineIntoWidth1(t *testing.T) {
	dst := make([]float32, 4)
	m := []int32{2, 0, 2}
	src := []float32{1, 5, 10}
	CombineInto(Sum, dst, m, src, 1)
	want := []float32{5, 0, 11, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestCombineIntoSkipsNegative(t *testing.T) {
	dst := make([]float32, 2)
	CombineInto(Sum, dst, []int32{-1, 1}, []float32{9, 4}, 1)
	if dst[0] != 0 || dst[1] != 4 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestCombineIntoWide(t *testing.T) {
	dst := make([]float32, 6) // 3 rows, width 2
	m := []int32{1, 1}
	src := []float32{1, 2, 10, 20}
	CombineInto(Sum, dst, m, src, 2)
	if dst[2] != 11 || dst[3] != 22 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestCombineIntoNonSumWidth1(t *testing.T) {
	dst := []float32{5, 5}
	CombineInto(Max, dst, []int32{0, 1}, []float32{9, 1}, 1)
	if dst[0] != 9 || dst[1] != 5 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestGatherInto(t *testing.T) {
	src := []float32{10, 20, 30}
	dst := make([]float32, 3)
	GatherInto(dst, []int32{2, 0, -1}, src, 1, -1)
	if dst[0] != 30 || dst[1] != 10 || dst[2] != -1 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestGatherIntoWide(t *testing.T) {
	src := []float32{1, 2, 3, 4}
	dst := make([]float32, 4)
	GatherInto(dst, []int32{1, -1}, src, 2, 7)
	want := []float32{3, 4, 7, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

// genericReducer wraps a builtin reducer so CombineInto cannot
// recognise it, forcing the row-by-row interface path — the reference
// implementation the specialised width/reducer kernels must match.
type genericReducer struct{ Reducer }

func (g genericReducer) Name() string { return "generic-" + g.Reducer.Name() }

// The width-1/width-4/strided specialisations must agree exactly with
// the generic per-row path for every builtin reducer, including -1
// (skip) entries in the map.
func TestCombineIntoSpecialisationsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, red := range []Reducer{Sum, Max, Min, Or} {
		for _, width := range []int{1, 3, 4, 8} {
			const rows, accRows = 200, 64
			m := make([]int32, rows)
			src := make([]float32, rows*width)
			for i := range m {
				if rng.Intn(8) == 0 {
					m[i] = -1
				} else {
					m[i] = rng.Int31n(accRows)
				}
			}
			for i := range src {
				src[i] = rng.Float32()*4 - 2
			}
			got := make([]float32, accRows*width)
			want := make([]float32, accRows*width)
			Fill(got, red.Identity())
			Fill(want, red.Identity())
			CombineInto(red, got, m, src, width)
			CombineInto(genericReducer{red}, want, m, src, width)
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%s width %d slot %d: got %v want %v", red.Name(), width, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGatherIntoWidth4(t *testing.T) {
	src := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	dst := make([]float32, 12)
	GatherInto(dst, []int32{1, -1, 0}, src, 4, 9)
	want := []float32{5, 6, 7, 8, 9, 9, 9, 9, 1, 2, 3, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestFill(t *testing.T) {
	d := make([]float32, 3)
	Fill(d, 2.5)
	for _, v := range d {
		if v != 2.5 {
			t.Fatal("fill failed")
		}
	}
}

// Round-trip property: scattering values through UnionWithMaps position
// maps and gathering them back must reproduce the original rows.
func TestMapsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		sets := make([]Set, 4)
		vals := make([][]float32, 4)
		for i := range sets {
			sets[i] = randomSet(rng, 64, 128)
			vals[i] = make([]float32, len(sets[i]))
			for j := range vals[i] {
				vals[i][j] = rng.Float32()
			}
		}
		union, maps := UnionWithMaps(sets)
		acc := make([]float32, len(union))
		for i := range sets {
			CombineInto(Sum, acc, maps[i], vals[i], 1)
		}
		// Gather each input's view back and compare to brute force.
		want := make(map[Key]float32)
		for i, s := range sets {
			for j, k := range s {
				want[k] += vals[i][j]
			}
		}
		for i, s := range sets {
			got := make([]float32, len(s))
			GatherInto(got, maps[i], acc, 1, 0)
			for j, k := range s {
				if diff := float64(got[j] - want[k]); math.Abs(diff) > 1e-4 {
					t.Fatalf("trial %d set %d slot %d: got %f want %f", trial, i, j, got[j], want[k])
				}
			}
		}
	}
}

func BenchmarkTreeMergeVsHash(b *testing.B) {
	// The §VI-A ablation: tree merging sorted runs vs a hash-table
	// union, on 64 power-law-ish sets. Run with -bench to compare the
	// two sub-benchmarks; the paper reports ~5x for tree.
	rng := rand.New(rand.NewSource(5))
	sets := make([]Set, 64)
	for i := range sets {
		sets[i] = randomSet(rng, 20000, 1<<20)
	}
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TreeUnion(sets)
		}
	})
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			HashUnion(sets)
		}
	})
}
