package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Quantized value wire formats.
//
// PR 5's index codec cut the configuration pass ~4x; after it, reduce
// and gather frames are dominated by raw float32 value blocks. This
// file is the value half of that trade (SparCML's stream quantization):
// two lossy fixed-point encodings of a value block, both deterministic
// — encoding is a pure elementwise function of the input bits, so every
// rank produces identical bytes for identical inputs — and both
// canonical (re-encoding a decoded block is byte-identical, which the
// transports rely on when they memoize encodings).
//
//   - FP16: IEEE 754 binary16 with round-to-nearest-even, 2 bytes per
//     value (2x under float32). Relative error <= 2^-11 per value over
//     the normal half range [2^-14, 65504]; subnormals, signed zeros,
//     infinities and NaN are preserved in kind.
//   - INT8: per-piece max-abs scaling, 1 byte per value plus a 4-byte
//     float32 scale header (~4x under float32 for realistic pieces).
//     q = round(x/scale) clamped to [-127, 127] with scale =
//     maxabs/127, decoded as q*scale. Absolute error <= scale/2;
//     non-finite inputs are not representable (they quantize to 0 and
//     belong in FP16 mode).
//
// Lossy encodings drift if the dropped precision is discarded: a value
// forever below the quantization step never contributes. The encode
// kernels therefore fuse error feedback (the SparCML accumulation): the
// caller keeps a residual buffer aligned with the piece, each round
// quantizes x = vals[j] + res[j], and the new residual res[j] = x -
// dequant(q(x)) carries the rounding error into the next round, so
// multi-round sums converge instead of silently losing mass.

// Quantization selects the wire encoding of reduce/gather value blocks.
type Quantization uint8

const (
	// QuantOff ships values as raw float32 (bit-exact, the default).
	QuantOff Quantization = iota
	// QuantFP16 ships IEEE binary16 values (2 bytes per value).
	QuantFP16
	// QuantINT8 ships max-abs-scaled int8 values (1 byte per value plus
	// a 4-byte per-piece scale).
	QuantINT8
)

// String implements fmt.Stringer.
func (q Quantization) String() string {
	switch q {
	case QuantOff:
		return "off"
	case QuantFP16:
		return "fp16"
	case QuantINT8:
		return "int8"
	default:
		return fmt.Sprintf("quant(%d)", uint8(q))
	}
}

// ParseQuantization parses the textual mode names used by flags and the
// daemon control API.
func ParseQuantization(s string) (Quantization, error) {
	switch s {
	case "off", "":
		return QuantOff, nil
	case "fp16":
		return QuantFP16, nil
	case "int8":
		return QuantINT8, nil
	default:
		return QuantOff, fmt.Errorf("sparse: unknown quantization %q (want off, fp16 or int8)", s)
	}
}

// Valid reports whether q names a defined mode.
func (q Quantization) Valid() bool { return q <= QuantINT8 }

// QuantizedSize is the encoded byte size of an n-value block in mode q
// (0 for an empty block in every mode, so empty stays canonical).
func QuantizedSize(q Quantization, n int) int {
	if n == 0 {
		return 0
	}
	switch q {
	case QuantFP16:
		return 2 * n
	case QuantINT8:
		return 4 + n
	default:
		return 4 * n
	}
}

// Float32ToFP16Bits converts f to IEEE 754 binary16 with
// round-to-nearest-even. Overflow rounds to the like-signed infinity,
// underflow to the like-signed zero, and NaN maps to a quiet half NaN.
//
//kylix:hotpath
func Float32ToFP16Bits(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	e32 := (b >> 23) & 0xff
	man := b & 0x7fffff
	if e32 == 0xff { // Inf / NaN
		if man != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	}
	he := int32(e32) - 112 // rebias 127 -> 15
	switch {
	case he >= 31: // overflow -> Inf
		return sign | 0x7c00
	case he >= 1: // normal half
		h := sign | uint16(he)<<10 | uint16(man>>13)
		round := man & 0x1fff
		if round > 0x1000 || (round == 0x1000 && h&1 == 1) {
			h++ // mantissa carry overflows into the exponent, which is exactly RNE
		}
		return h
	case he >= -10: // subnormal half
		sig := man | 0x800000
		shift := uint32(14 - he) // 14..24
		h := sign | uint16(sig>>shift)
		round := sig & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if round > half || (round == half && h&1 == 1) {
			h++ // may carry into 2^-14, the smallest normal, which is correct
		}
		return h
	default: // underflow (including every float32 subnormal) -> signed zero
		return sign
	}
}

// FP16BitsToFloat32 is the exact inverse widening: every binary16 value
// converts to float32 without error.
//
//kylix:hotpath
func FP16BitsToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h) & 0x3ff
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal half: man * 2^-24, renormalized for float32.
		k := uint32(bits.Len32(man) - 1)
		return math.Float32frombits(sign | (k+103)<<23 | (man<<(10-k)&0x3ff)<<13)
	case exp == 31: // Inf / NaN
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// QuantizeFP16 encodes vals into dst as little-endian binary16, fusing
// error feedback when res is non-nil: each element quantizes
// x = vals[j] + res[j] and stores the rounding error back into res[j].
// len(dst) must be 2*len(vals); res, when present, aligns with vals.
// vals is never written.
//
//kylix:hotpath
func QuantizeFP16(dst []byte, vals, res []float32) {
	if len(vals) == 0 {
		return
	}
	_ = dst[2*len(vals)-1]
	if res == nil {
		j := 0
		for ; j+4 <= len(vals); j += 4 { // unrolled 4-wide like CombineInto
			d := dst[j*2 : j*2+8 : j*2+8]
			s := vals[j : j+4 : j+4]
			binary.LittleEndian.PutUint16(d[0:], Float32ToFP16Bits(s[0]))
			binary.LittleEndian.PutUint16(d[2:], Float32ToFP16Bits(s[1]))
			binary.LittleEndian.PutUint16(d[4:], Float32ToFP16Bits(s[2]))
			binary.LittleEndian.PutUint16(d[6:], Float32ToFP16Bits(s[3]))
		}
		for ; j < len(vals); j++ {
			binary.LittleEndian.PutUint16(dst[j*2:], Float32ToFP16Bits(vals[j]))
		}
		return
	}
	res = res[:len(vals)]
	for j, v := range vals {
		x := v + res[j]
		h := Float32ToFP16Bits(x)
		binary.LittleEndian.PutUint16(dst[j*2:], h)
		res[j] = x - FP16BitsToFloat32(h)
	}
}

// DequantizeFP16 decodes a binary16 block into dst.
// len(src) must be 2*len(dst).
//
//kylix:hotpath
func DequantizeFP16(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[2*len(dst)-1]
	j := 0
	for ; j+4 <= len(dst); j += 4 {
		s := src[j*2 : j*2+8 : j*2+8]
		d := dst[j : j+4 : j+4]
		d[0] = FP16BitsToFloat32(binary.LittleEndian.Uint16(s[0:]))
		d[1] = FP16BitsToFloat32(binary.LittleEndian.Uint16(s[2:]))
		d[2] = FP16BitsToFloat32(binary.LittleEndian.Uint16(s[4:]))
		d[3] = FP16BitsToFloat32(binary.LittleEndian.Uint16(s[6:]))
	}
	for ; j < len(dst); j++ {
		dst[j] = FP16BitsToFloat32(binary.LittleEndian.Uint16(src[j*2:]))
	}
}

// QuantizeINT8 encodes vals into dst with per-block max-abs scaling: a
// 4-byte float32 scale (maxabs/127) followed by one signed byte per
// value, q = round(x/scale) clamped to [-127, 127] with ties away from
// zero. Error feedback fuses as in QuantizeFP16 when res is non-nil.
// len(dst) must be 4+len(vals); vals is never written. Rounding is a
// pure function of the input bits (NaN quantizes to 0), so the encoding
// is deterministic for every input.
//
//kylix:hotpath
func QuantizeINT8(dst []byte, vals, res []float32) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = dst[4+n-1]
	var maxabs float32
	if res == nil {
		for _, v := range vals {
			if a := abs32(v); a > maxabs {
				maxabs = a
			}
		}
	} else {
		res = res[:n]
		for j, v := range vals {
			if a := abs32(v + res[j]); a > maxabs {
				maxabs = a
			}
		}
	}
	scale := maxabs / 127
	binary.LittleEndian.PutUint32(dst, math.Float32bits(scale))
	q := dst[4 : 4+n : 4+n]
	if scale == 0 { // all-zero block (or all values subnormal-tiny)
		for j := range q {
			q[j] = 0
		}
		if res != nil {
			for j, v := range vals {
				res[j] = v + res[j]
			}
		}
		return
	}
	inv := 1 / scale
	if res == nil {
		for j, v := range vals {
			q[j] = byte(quantInt8(v * inv))
		}
		return
	}
	for j, v := range vals {
		x := v + res[j]
		k := quantInt8(x * inv)
		q[j] = byte(k)
		res[j] = x - float32(k)*scale
	}
}

// quantInt8 rounds r to the nearest integer in [-127, 127], ties away
// from zero, NaN to 0. Every branch is a float32 compare, so the result
// is deterministic for all inputs (no implementation-defined
// float-to-int conversion is ever reached out of range).
func quantInt8(r float32) int8 {
	switch {
	case r >= 127:
		return 127
	case r <= -127:
		return -127
	case r >= 0:
		return int8(r + 0.5)
	case r < 0:
		return int8(r - 0.5)
	default: // NaN
		return 0
	}
}

func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
}

// DequantizeINT8 decodes a max-abs-scaled int8 block into dst.
// len(src) must be 4+len(dst). The byte -128 is accepted (a hostile
// encoder could ship it) and decodes as -128*scale.
//
//kylix:hotpath
func DequantizeINT8(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[4+len(dst)-1]
	scale := math.Float32frombits(binary.LittleEndian.Uint32(src))
	q := src[4 : 4+len(dst) : 4+len(dst)]
	j := 0
	for ; j+4 <= len(dst); j += 4 {
		s := q[j : j+4 : j+4]
		d := dst[j : j+4 : j+4]
		d[0] = float32(int8(s[0])) * scale
		d[1] = float32(int8(s[1])) * scale
		d[2] = float32(int8(s[2])) * scale
		d[3] = float32(int8(s[3])) * scale
	}
	for ; j < len(dst); j++ {
		dst[j] = float32(int8(q[j])) * scale
	}
}

// Quantize dispatches to the mode's encode kernel. dst must hold
// QuantizedSize(q, len(vals)) bytes; res, when non-nil, is the caller's
// error-feedback residual aligned with vals. QuantOff is not a valid
// mode here — raw blocks ship as comm.Floats without a codec pass.
//
//kylix:hotpath
func Quantize(q Quantization, dst []byte, vals, res []float32) {
	switch q {
	case QuantFP16:
		QuantizeFP16(dst, vals, res)
	case QuantINT8:
		QuantizeINT8(dst, vals, res)
	default:
		panic("sparse: Quantize called with mode " + q.String())
	}
}

// Dequantize dispatches to the mode's decode kernel. len(src) must be
// QuantizedSize(q, len(dst)).
//
//kylix:hotpath
func Dequantize(q Quantization, dst []float32, src []byte) {
	switch q {
	case QuantFP16:
		DequantizeFP16(dst, src)
	case QuantINT8:
		DequantizeINT8(dst, src)
	default:
		panic("sparse: Dequantize called with mode " + q.String())
	}
}

// ValuesDigest is a 64-bit FNV-1a fingerprint of a value vector's exact
// bit pattern — the value-level counterpart of Config.Digest. Two runs
// whose digests agree produced bit-identical results; the chaos suite
// uses it to prove quantized reductions are deterministic even though
// they are no longer bit-equal to the unquantized oracle.
func ValuesDigest(vals []float32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vals {
		b := math.Float32bits(v)
		h = (h ^ uint64(b&0xff)) * prime64
		h = (h ^ uint64(b>>8&0xff)) * prime64
		h = (h ^ uint64(b>>16&0xff)) * prime64
		h = (h ^ uint64(b>>24)) * prime64
	}
	return h
}
