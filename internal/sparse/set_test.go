package sparse

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMakeKeyRoundTrip(t *testing.T) {
	for _, idx := range []int32{0, 1, 7, 1 << 20, 1<<31 - 1} {
		k := MakeKey(idx)
		if k.Index() != idx {
			t.Errorf("MakeKey(%d).Index() = %d", idx, k.Index())
		}
		if k.Hash() != hash32(uint32(idx)) {
			t.Errorf("hash half mismatch for %d", idx)
		}
	}
}

func TestHash32Bijective(t *testing.T) {
	// Spot-check injectivity on a window; fmix32 is a bijection by
	// construction (xorshift and odd-multiply steps are invertible).
	seen := make(map[uint32]uint32)
	for i := uint32(0); i < 100000; i++ {
		h := hash32(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash32 collision: %d and %d -> %d", prev, i, h)
		}
		seen[h] = i
	}
}

func TestKeyOrderFollowsHash(t *testing.T) {
	a, b := MakeKey(3), MakeKey(4)
	if (a < b) != (a.Hash() < b.Hash() || (a.Hash() == b.Hash() && a.Index() < b.Index())) {
		t.Error("key order does not follow (hash, index) order")
	}
}

func TestNewSetDedupAndPerm(t *testing.T) {
	in := []int32{5, 3, 5, 9, 3, 3}
	set, perm, err := NewSet(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("want 3 unique keys, got %d", len(set))
	}
	if !set.IsSorted() {
		t.Fatal("set not sorted")
	}
	for i, idx := range in {
		if set[perm[i]].Index() != idx {
			t.Errorf("perm[%d] points at index %d, want %d", i, set[perm[i]].Index(), idx)
		}
	}
}

func TestNewSetRejectsNegative(t *testing.T) {
	if _, _, err := NewSet([]int32{1, -2, 3}); err == nil {
		t.Fatal("want error for negative index")
	}
}

func TestNewSetEmpty(t *testing.T) {
	set, perm, err := NewSet(nil)
	if err != nil || len(set) != 0 || len(perm) != 0 {
		t.Fatalf("empty input: set=%v perm=%v err=%v", set, perm, err)
	}
}

func TestSetContainsPosition(t *testing.T) {
	set := MustNewSet([]int32{10, 20, 30, 40})
	for _, idx := range []int32{10, 20, 30, 40} {
		k := MakeKey(idx)
		if !set.Contains(k) {
			t.Errorf("Contains(%d) = false", idx)
		}
		p, ok := set.Position(k)
		if !ok || set[p] != k {
			t.Errorf("Position(%d) = %d,%v", idx, p, ok)
		}
	}
	if set.Contains(MakeKey(11)) {
		t.Error("Contains(11) = true")
	}
	if _, ok := set.Position(MakeKey(11)); ok {
		t.Error("Position(11) found")
	}
}

func TestSubset(t *testing.T) {
	a := MustNewSet([]int32{1, 3, 5})
	b := MustNewSet([]int32{0, 1, 2, 3, 4, 5})
	if !a.Subset(b) {
		t.Error("a should be subset of b")
	}
	if b.Subset(a) {
		t.Error("b should not be subset of a")
	}
	if !Set(nil).Subset(a) {
		t.Error("empty set is a subset of anything")
	}
}

func TestSetEqualClone(t *testing.T) {
	a := MustNewSet([]int32{1, 2, 3})
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal")
	}
	c[0] = MakeKey(99)
	if a.Equal(c) {
		t.Error("mutating clone affected original comparison")
	}
	if a.Equal(a[:2]) {
		t.Error("prefix compared equal")
	}
}

// Property: NewSet output is always sorted, deduplicated, and the
// permutation always points each input at its own key.
func TestNewSetProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		in := make([]int32, len(raw))
		for i, r := range raw {
			in[i] = int32(r)
		}
		set, perm, err := NewSet(in)
		if err != nil {
			return false
		}
		if !set.IsSorted() {
			return false
		}
		for i, idx := range in {
			if set[perm[i]].Index() != idx {
				return false
			}
		}
		uniq := make(map[int32]bool)
		for _, idx := range in {
			uniq[idx] = true
		}
		return len(set) == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRangeSubCoversAndNests(t *testing.T) {
	r := FullRange()
	for _, d := range []int{1, 2, 3, 7, 64} {
		var prev Key
		for tt := 0; tt < d; tt++ {
			sub := r.Sub(d, tt)
			if tt == 0 && sub.Lo != r.Lo {
				t.Errorf("d=%d first sub does not start at range lo", d)
			}
			if tt > 0 && sub.Lo != prev {
				t.Errorf("d=%d sub %d not contiguous", d, tt)
			}
			if sub.Lo >= sub.Hi {
				t.Errorf("d=%d sub %d empty or inverted", d, tt)
			}
			prev = sub.Hi
		}
		if prev != r.Hi {
			t.Errorf("d=%d subs do not cover range", d)
		}
	}
}

func TestRangeSubPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-bounds Sub")
		}
	}()
	FullRange().Sub(4, 4)
}

// Property: every key lands in exactly one sub-range.
func TestRangeSubPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := FullRange()
	for trial := 0; trial < 500; trial++ {
		k := MakeKey(rng.Int31())
		d := 1 + rng.Intn(16)
		count := 0
		for tt := 0; tt < d; tt++ {
			if r.Sub(d, tt).Contains(k) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("key %x in %d sub-ranges of %d", uint64(k), count, d)
		}
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	in := []int32{8, 1, 99, 4}
	set := MustNewSet(in)
	got := set.Indices()
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	want := []int32{1, 4, 8, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices() = %v, want %v", got, want)
		}
	}
}

func TestLowerBound(t *testing.T) {
	set := MustNewSet([]int32{10, 20, 30})
	if lb := set.LowerBound(set[0]); lb != 0 {
		t.Errorf("LowerBound(first) = %d", lb)
	}
	if lb := set.LowerBound(set[2] + 1); lb != 3 {
		t.Errorf("LowerBound(past-end) = %d", lb)
	}
}
