package sparse

import (
	"fmt"
	"sort"
)

// Set is a deduplicated slice of Keys in ascending order. The zero value
// is an empty, usable Set.
type Set []Key

// NewSet builds a Set from raw feature indices. Duplicate indices are
// collapsed. The second return value maps each input position to the
// position of its key in the resulting Set, so callers can translate
// between their original index order and the protocol's sorted order.
func NewSet(indices []int32) (Set, []int32, error) {
	type tagged struct {
		key Key
		pos int32
	}
	tmp := make([]tagged, len(indices))
	for i, idx := range indices {
		if idx < 0 {
			return nil, nil, fmt.Errorf("sparse: negative feature index %d at position %d", idx, i)
		}
		tmp[i] = tagged{MakeKey(idx), int32(i)}
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a].key < tmp[b].key })

	set := make(Set, 0, len(tmp))
	perm := make([]int32, len(indices))
	for i := 0; i < len(tmp); {
		k := tmp[i].key
		set = append(set, k)
		slot := int32(len(set) - 1)
		for ; i < len(tmp) && tmp[i].key == k; i++ {
			perm[tmp[i].pos] = slot
		}
	}
	return set, perm, nil
}

// MustNewSet is NewSet for inputs known to be valid; it panics on error.
// It is intended for tests and examples.
func MustNewSet(indices []int32) Set {
	s, _, err := NewSet(indices)
	if err != nil {
		panic(err)
	}
	return s
}

// Indices returns the feature indices of the Set in key order.
func (s Set) Indices() []int32 {
	out := make([]int32, len(s))
	for i, k := range s {
		out[i] = k.Index()
	}
	return out
}

// IsSorted reports whether s is strictly ascending (sorted and
// duplicate-free), the invariant all Sets must maintain.
func (s Set) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Contains reports whether key k is present, by binary search.
func (s Set) Contains(k Key) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= k })
	return i < len(s) && s[i] == k
}

// Position returns the slot of key k in s and whether it is present.
func (s Set) Position(k Key) (int, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= k })
	if i < len(s) && s[i] == k {
		return i, true
	}
	return -1, false
}

// LowerBound returns the first slot whose key is >= k.
func (s Set) LowerBound(k Key) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= k })
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two Sets hold exactly the same keys. Aliasing
// slices short-circuit without a scan — the incremental reconfiguration
// path compares layer inputs that are often literally the previous
// union, so the pointer test turns a linear pass into O(1).
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	if len(s) == 0 || &s[0] == &t[0] {
		return true
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Subset reports whether every key of s is present in t. Both must be
// sorted; the check is a linear merge-join.
func (s Set) Subset(t Set) bool {
	j := 0
	for _, k := range s {
		for j < len(t) && t[j] < k {
			j++
		}
		if j >= len(t) || t[j] != k {
			return false
		}
	}
	return true
}
