#!/usr/bin/env sh
# The full PR gate, for environments without make: vet (standard plus
# the kylix-vet invariant analyzers), build, tests, and the race lane
# over the concurrency-critical packages.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== kylix-vet (hotpathalloc, lockobs, determinism, commcheck, goleak, lockorder, atomicmix)"
mkdir -p bin
go build -o bin/kylix-vet ./cmd/kylix-vet
go vet -vettool=bin/kylix-vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race -short (comm, core, faultnet, tcpnet, replica, trace, obs, membership, par, stream)"
go test -race -short ./internal/comm/... ./internal/core/... ./internal/faultnet/... ./internal/tcpnet/... ./internal/replica/... ./internal/trace/... ./internal/obs/... ./internal/membership/... ./internal/par/... ./internal/stream/...

echo "== go test -race (stream lifecycle: concurrent tenants, close hammer)"
go test -race -run 'TestStreamIsolation64|TestStreamBackpressure|TestStreamCloseSemantics|TestClusterClose' -count=1 -timeout 600s .

echo "== elastic membership chaos soak (both transports)"
go test -run 'TestElasticChurn|TestTCPChurnSoak' -count=1 . ./internal/replica/

echo "== multi-tenant stream chaos soak (both transports)"
go test -run 'TestStreamIsolationChaos' -count=1 .

echo "== bench gate (warm Reduce must be allocation-free)"
scripts/bench.sh --gate

echo "check OK"
