#!/usr/bin/env sh
# The full PR gate, for environments without make: vet, build, tests,
# and the race lane over the concurrency-critical packages.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race -short (faultnet, tcpnet, replica, trace, obs)"
go test -race -short ./internal/faultnet/... ./internal/tcpnet/... ./internal/replica/... ./internal/trace/... ./internal/obs/...

echo "== bench gate (warm Reduce must be allocation-free)"
scripts/bench.sh --gate

echo "check OK"
