#!/usr/bin/env sh
# Optional deep-lint lane: staticcheck and govulncheck at the versions
# pinned in tools/tools.go, fetched with `go install <module>@<version>`
# into a throwaway GOBIN so go.mod stays dependency-free.
#
# Both tools need the module proxy. In hermetic/offline environments the
# fetch step fails and the lane SKIPS (exit 0) with a notice — the
# required gate is `make check`, which runs the in-tree kylix-vet suite
# and has no network dependency. Once a tool is fetched, its findings
# are filtered through scripts/lint-allow.txt: a finding line matching
# any pattern there is accepted, anything else fails the lane.
set -eu

cd "$(dirname "$0")/.."

STATICCHECK_VERSION=$(sed -n 's/.*StaticcheckVersion = "\([^"]*\)".*/\1/p' tools/tools.go)
GOVULNCHECK_VERSION=$(sed -n 's/.*GovulncheckVersion = "\([^"]*\)".*/\1/p' tools/tools.go)
[ -n "$STATICCHECK_VERSION" ] || { echo "lint: cannot read StaticcheckVersion from tools/tools.go" >&2; exit 1; }
[ -n "$GOVULNCHECK_VERSION" ] || { echo "lint: cannot read GovulncheckVersion from tools/tools.go" >&2; exit 1; }

GOBIN=$(mktemp -d)
PATTERNS=$(mktemp)
trap 'rm -rf "$GOBIN" "$PATTERNS"' EXIT
# Allowlist, comments and blanks stripped; the seed pattern ^$ can never
# match a finding line, so an effectively empty allowlist allows nothing.
{ echo '^$'; grep -v '^#' scripts/lint-allow.txt | grep -v '^[[:space:]]*$' || true; } > "$PATTERNS"

fetch() {
	# go install <module>@<version>; failure means no proxy access.
	GOBIN="$GOBIN" go install "$1@$2" >/dev/null 2>&1
}

run_filtered() {
	name=$1
	shift
	out=$(mktemp)
	if "$@" > "$out" 2>&1; then
		echo "== $name clean"
		rm -f "$out"
		return 0
	fi
	if grep -v -f "$PATTERNS" "$out" | grep -q .; then
		echo "== $name findings (not allowlisted):"
		grep -v -f "$PATTERNS" "$out"
		rm -f "$out"
		return 1
	fi
	echo "== $name: allowlisted findings only"
	rm -f "$out"
	return 0
}

status=0

if fetch honnef.co/go/tools/cmd/staticcheck "$STATICCHECK_VERSION"; then
	run_filtered "staticcheck $STATICCHECK_VERSION" "$GOBIN/staticcheck" ./... || status=1
else
	echo "== staticcheck: module proxy unreachable, skipping (offline build)"
fi

if fetch golang.org/x/vuln/cmd/govulncheck "$GOVULNCHECK_VERSION"; then
	run_filtered "govulncheck $GOVULNCHECK_VERSION" "$GOBIN/govulncheck" ./... || status=1
else
	echo "== govulncheck: module proxy unreachable, skipping (offline build)"
fi

[ "$status" -eq 0 ] && echo "lint OK"
exit "$status"
