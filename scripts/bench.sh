#!/usr/bin/env sh
# Hot-path and figure benchmarks with memory accounting.
#
#   scripts/bench.sh            # run benchmarks, print results, write
#                               # BENCH_reduce.json, BENCH_config.json and
#                               # BENCH_wire.json (ns/op, B/op, allocs/op,
#                               # and the value-codec wire accounting)
#   scripts/bench.sh --gate     # additionally fail if either warm Reduce
#                               # benchmark (plain or with observability)
#                               # allocates (>0 allocs/op), if the
#                               # observability-enabled run is more than
#                               # KYLIX_BENCH_TOLERANCE percent (default
#                               # 10) slower than the number recorded in
#                               # BENCH_reduce.json, if the configuration
#                               # pass (BenchmarkConfigure8x4x2) is no
#                               # longer >=1.5x faster (tolerance-widened)
#                               # than the archived pre-rework baseline
#                               # in scripts/bench_config_baseline.txt,
#                               # or if a warm
#                               # unchanged-sets Reconfigure costs more
#                               # than 10(1+tol/100)% of the full fused
#                               # ConfigureReduce on the same topology.
#                               # The wire gate additionally requires the
#                               # quantized warm Reduce (fp16 and int8) to
#                               # stay at 0 allocs/op and fp16 to ship
#                               # >=1.7x fewer value-plane payload bytes
#                               # than raw float32
#
# BENCH_reduce.json is the checked-in record of the hot-path numbers;
# regenerate it when the hot path changes and commit both runs'
# numbers alongside (see EXPERIMENTS.md).
set -eu

cd "$(dirname "$0")/.."

gate=0
if [ "${1:-}" = "--gate" ]; then
    gate=1
fi

# Remember the previously recorded observability-enabled hot-path time
# before this run overwrites BENCH_reduce.json; the gate compares
# against it. Absent (first recording) the regression check is skipped.
prev_obs_ns=""
if [ -f BENCH_reduce.json ]; then
    prev_obs_ns="$(sed -n 's/.*"BenchmarkReduceWarmObs": {"ns_per_op": \([0-9.]*\).*/\1/p' BENCH_reduce.json | tail -1)"
fi

out="$(mktemp)"
cfgout="$(mktemp)"
wireout=""
trap 'rm -f "$out" "$cfgout" "$wireout"' EXIT

echo "== hot-path benchmarks (internal/bench, internal/core, internal/sparse)"
go test ./internal/bench/ -run '^$' -bench 'BenchmarkReduceWarmQuick|BenchmarkReduceWarmObs|BenchmarkReduceWarmW4' -benchtime 2s -benchmem | tee "$out"
go test ./internal/core/ -run '^$' -bench 'BenchmarkReduce|BenchmarkConfigure|BenchmarkTreeAllreduce' -benchtime 1s -benchmem | tee -a "$out"
go test ./internal/sparse/ -run '^$' -bench 'BenchmarkCombineInto|BenchmarkGatherInto|BenchmarkTreeUnion$|BenchmarkUnionWithMaps' -benchtime 1s -benchmem | tee -a "$out"

echo "== wire benchmarks (internal/tcpnet, real loopback sockets)"
go test ./internal/tcpnet/ -run '^$' -bench 'BenchmarkFrameBatching' -benchtime 1s -benchmem | tee -a "$out"

echo "== wire quantization benchmarks (value codec: fp16 / int8)"
wireout="$(mktemp)"
go test ./internal/bench/ -run '^$' -bench 'BenchmarkReduceWarmFP16|BenchmarkReduceWarmINT8' -benchtime 2s -benchmem | tee "$wireout"
go test ./internal/sparse/ -run '^$' -bench 'BenchmarkQuantize|BenchmarkDequantize' -benchtime 1s -benchmem | tee -a "$wireout"

echo "== configuration benchmarks (configure / reconfigure / index codec)"
go test ./internal/core/ -run '^$' -bench 'BenchmarkConfigure8x4x2|BenchmarkConfigureReduce16|BenchmarkConfigureReduce8x4x2|BenchmarkReconfigureWarm' -benchtime 2s -benchmem | tee "$cfgout"
go test ./internal/sparse/ -run '^$' -bench 'BenchmarkKeysCodec' -benchtime 1s -benchmem | tee -a "$cfgout"

echo "== stream benchmarks (multi-tenant aggregate throughput, TCP)"
go test . -run '^$' -bench 'BenchmarkStreams(Serial|Concurrent)$' -benchtime 1s -benchmem | tee -a "$out"

echo "== figure benchmarks (quick scale, 1 iteration each)"
go test . -run '^$' -bench 'BenchmarkFigure' -benchtime 1x -benchmem | tee -a "$out"

# parse turns `go test -bench` output into the body of a JSON object,
# one entry per benchmark.
parse() {
    awk '
    BEGIN { first = 1 }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        ns = ""; bop = ""; aop = ""; shards = ""; fpw = ""
        vb = ""; rvb = ""; vx = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")          ns     = $(i-1)
            if ($(i) == "B/op")           bop    = $(i-1)
            if ($(i) == "allocs/op")      aop    = $(i-1)
            if ($(i) == "shards/op")      shards = $(i-1)
            if ($(i) == "frames/writev")  fpw    = $(i-1)
            if ($(i) == "valbytes/op")    vb     = $(i-1)
            if ($(i) == "rawvalbytes/op") rvb    = $(i-1)
            if ($(i) == "valx")           vx     = $(i-1)
        }
        if (ns == "") next
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns
        if (bop != "")    printf ", \"bytes_per_op\": %s", bop
        if (aop != "")    printf ", \"allocs_per_op\": %s", aop
        if (shards != "") printf ", \"shards_per_op\": %s", shards
        if (fpw != "")    printf ", \"frames_per_writev\": %s", fpw
        if (vb != "")     printf ", \"value_bytes_per_op\": %s", vb
        if (rvb != "")    printf ", \"raw_value_bytes_per_op\": %s", rvb
        if (vx != "")     printf ", \"value_compression\": %s", vx
        printf "}"
    }' "$1"
}

# The JSON records both runs: "before" is the archived pre-optimisation
# output (scripts/bench_baseline.txt, captured on the same machine before
# the hot-path rework), "after" is this run.
json="BENCH_reduce.json"
baseline="scripts/bench_baseline.txt"
{
    echo "{"
    if [ -f "$baseline" ]; then
        printf '  "before": {\n'
        parse "$baseline"
        printf '\n  },\n'
    fi
    printf '  "after": {\n'
    parse "$out"
    printf '\n  }\n}\n'
} > "$json"
echo "== wrote $json"

# BENCH_config.json is the same record for the configuration pass:
# "before" is the archived pre-rework output (raw 8-byte wire format,
# eager scratch, tree-union + per-piece map scans), "after" is this run.
cfgjson="BENCH_config.json"
cfgbaseline="scripts/bench_config_baseline.txt"
{
    echo "{"
    if [ -f "$cfgbaseline" ]; then
        printf '  "before": {\n'
        parse "$cfgbaseline"
        printf '\n  },\n'
    fi
    printf '  "after": {\n'
    parse "$cfgout"
    printf '\n  }\n}\n'
} > "$cfgjson"
echo "== wrote $cfgjson"

# BENCH_wire.json records the wire-level value quantization numbers:
# raw_value_bytes_per_op is what one collective round ships as raw
# float32 payload ("before"), value_bytes_per_op what the selected
# codec ships ("after"), value_compression their ratio.
wirejson="BENCH_wire.json"
{
    echo "{"
    printf '  "after": {\n'
    parse "$wireout"
    printf '\n  }\n}\n'
} > "$wirejson"
echo "== wrote $wirejson"

if [ "$gate" = 1 ]; then
    for b in BenchmarkReduceWarmQuick BenchmarkReduceWarmObs BenchmarkReduceWarmW4 BenchmarkReduceWarmW4Workers; do
        allocs="$(awk -v b="$b" '$1 ~ "^"b"(-[0-9]+)?$" { for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") print $(i-1) }' "$out")"
        if [ -z "$allocs" ]; then
            echo "bench gate: $b did not report allocs/op" >&2
            exit 1
        fi
        if [ "$allocs" != "0" ]; then
            echo "bench gate: $b allocates ($allocs allocs/op, want 0)" >&2
            exit 1
        fi
    done
    # Quantized warm Reduce must stay allocation-free too: the value
    # codec runs entirely from the preallocated QVals arena and landing
    # buffers.
    for b in BenchmarkReduceWarmFP16 BenchmarkReduceWarmINT8; do
        allocs="$(awk -v b="$b" '$1 ~ "^"b"(-[0-9]+)?$" { for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") print $(i-1) }' "$wireout")"
        if [ -z "$allocs" ]; then
            echo "bench gate: $b did not report allocs/op" >&2
            exit 1
        fi
        if [ "$allocs" != "0" ]; then
            echo "bench gate: $b allocates ($allocs allocs/op, want 0)" >&2
            exit 1
        fi
    done

    # Value quantization gate: fp16 must ship >=1.7x fewer value-plane
    # payload bytes than the raw float32 encoding on the power-law
    # workload (the theoretical 2x minus per-piece header overhead).
    valx="$(awk '$1 ~ /^BenchmarkReduceWarmFP16(-[0-9]+)?$/ { for (i = 2; i <= NF; i++) if ($(i) == "valx") print $(i-1) }' "$wireout")"
    if [ -z "$valx" ]; then
        echo "bench gate: BenchmarkReduceWarmFP16 did not report valx" >&2
        exit 1
    fi
    if awk -v x="$valx" 'BEGIN { exit !(x < 1.7) }'; then
        echo "bench gate: fp16 value compression below floor: ${valx}x (want >=1.7x)" >&2
        exit 1
    fi
    echo "bench gate OK: fp16 value payload ${valx}x smaller than raw float32"

    obs_ns="$(awk '/^BenchmarkReduceWarmObs/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$out")"
    tol="${KYLIX_BENCH_TOLERANCE:-10}"
    if [ -n "$prev_obs_ns" ] && [ -n "$obs_ns" ]; then
        if awk -v cur="$obs_ns" -v prev="$prev_obs_ns" -v tol="$tol" \
            'BEGIN { exit !(cur > prev * (1 + tol / 100)) }'; then
            echo "bench gate: observed warm Reduce regressed: $obs_ns ns/op vs recorded $prev_obs_ns (+>${tol}%)" >&2
            exit 1
        fi
        echo "bench gate OK: warm Reduce (plain and observed) allocation-free; observed $obs_ns ns/op within ${tol}% of recorded $prev_obs_ns"
    else
        echo "bench gate OK: warm Reduce (plain and observed) allocation-free (no recorded WarmObs baseline to compare)"
    fi

    # Configuration-pass gate: the rework's contract is a >=1.5x
    # Configure8x4x2 speedup over the archived pre-rework baseline.
    # Anchoring to the fixed baseline (not the previous run's number)
    # keeps the gate stable on a 1-core box with ~10% run-to-run noise —
    # a self-referential gate ratchets on a lucky fast run and then
    # flakes on the next ordinary one.
    cfg_ns="$(awk '/^BenchmarkConfigure8x4x2/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$cfgout")"
    if [ -z "$cfg_ns" ]; then
        echo "bench gate: BenchmarkConfigure8x4x2 did not run" >&2
        exit 1
    fi
    base_cfg_ns=""
    if [ -f "$cfgbaseline" ]; then
        base_cfg_ns="$(awk '/^BenchmarkConfigure8x4x2/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$cfgbaseline")"
    fi
    if [ -n "$base_cfg_ns" ]; then
        if awk -v cur="$cfg_ns" -v base="$base_cfg_ns" -v tol="$tol" \
            'BEGIN { exit !(cur * 1.5 > base * (1 + tol / 100)) }'; then
            echo "bench gate: Configure8x4x2 speedup eroded: $cfg_ns ns/op vs pre-rework $base_cfg_ns (<1.5x with ${tol}% slack)" >&2
            exit 1
        fi
        echo "bench gate OK: Configure8x4x2 $cfg_ns ns/op is $(awk -v c="$cfg_ns" -v b="$base_cfg_ns" 'BEGIN { printf "%.2f", b / c }')x faster than pre-rework $base_cfg_ns"
    else
        echo "bench gate OK: Configure8x4x2 $cfg_ns ns/op (no archived baseline to compare)"
    fi

    # Incremental-reconfigure gate: a warm unchanged-sets Reconfigure
    # must stay a small fraction (<=10%, tolerance-widened) of the full
    # fused ConfigureReduce on the same 64-machine topology.
    rec_ns="$(awk '/^BenchmarkReconfigureWarm/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$cfgout")"
    full_ns="$(awk '/^BenchmarkConfigureReduce8x4x2/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$cfgout")"
    if [ -z "$rec_ns" ] || [ -z "$full_ns" ]; then
        echo "bench gate: reconfigure benchmarks did not run" >&2
        exit 1
    fi
    if awk -v rec="$rec_ns" -v full="$full_ns" -v tol="$tol" \
        'BEGIN { exit !(rec > full * 0.10 * (1 + tol / 100)) }'; then
        echo "bench gate: warm Reconfigure too slow: $rec_ns ns/op vs full ConfigureReduce $full_ns (>10%+${tol}% slack)" >&2
        exit 1
    fi
    echo "bench gate OK: warm Reconfigure $rec_ns ns/op is $(awk -v r="$rec_ns" -v f="$full_ns" 'BEGIN { printf "%.1f", 100 * r / f }')% of full ConfigureReduce $full_ns"

    # Intra-node threading gate (Figure 7): the sharded width-4 warm
    # Reduce must actually shard, and on a box with at least as many
    # cores as the pool has workers it must be >=2x the serial fold
    # (tolerance-widened). Below 4 cores the workers time-slice one
    # another and the contrast measures scheduling overhead, so only the
    # sharding-engaged check applies.
    w4_ns="$(awk '$1 ~ /^BenchmarkReduceWarmW4(-[0-9]+)?$/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$out")"
    w4w_ns="$(awk '$1 ~ /^BenchmarkReduceWarmW4Workers(-[0-9]+)?$/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$out")"
    w4w_shards="$(awk '$1 ~ /^BenchmarkReduceWarmW4Workers(-[0-9]+)?$/ { for (i = 2; i <= NF; i++) if ($(i) == "shards/op") print $(i-1) }' "$out")"
    if [ -z "$w4_ns" ] || [ -z "$w4w_ns" ] || [ -z "$w4w_shards" ]; then
        echo "bench gate: width-4 warm Reduce benchmarks did not run" >&2
        exit 1
    fi
    if awk -v s="$w4w_shards" 'BEGIN { exit !(s <= 0) }'; then
        echo "bench gate: BenchmarkReduceWarmW4Workers never sharded ($w4w_shards shards/op)" >&2
        exit 1
    fi
    cores="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
    if [ "$cores" -ge 4 ]; then
        if awk -v w="$w4w_ns" -v s="$w4_ns" -v tol="$tol" \
            'BEGIN { exit !(w * 2 > s * (1 + tol / 100)) }'; then
            echo "bench gate: sharded W4 Reduce not >=2x serial on $cores cores: $w4w_ns ns/op vs $w4_ns" >&2
            exit 1
        fi
        echo "bench gate OK: sharded W4 Reduce $w4w_ns ns/op is $(awk -v w="$w4w_ns" -v s="$w4_ns" 'BEGIN { printf "%.2f", s / w }')x serial $w4_ns on $cores cores ($w4w_shards shards/op)"
    else
        echo "bench gate OK: sharded W4 Reduce engaged ($w4w_shards shards/op); speedup gate skipped on $cores core(s)"
    fi

    # Multi-tenant throughput gate: four concurrent tenant passes over
    # one shared TCP fabric must beat the same four passes run
    # back-to-back — overlapping socket waits is the point of
    # multiplexing streams. On a single core only the waits overlap
    # (measured ~1.1-1.4x depending on box load), so the bar is just
    # "strictly beats serial" with the tolerance as noise slack; with
    # >=4 cores compute overlaps too and the bar rises to >=1.5x. A
    # scheduler regression that serializes streams lands at <=1.0x and
    # fails either way.
    ser_ns="$(awk '$1 ~ /^BenchmarkStreamsSerial(-[0-9]+)?$/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$out")"
    conc_ns="$(awk '$1 ~ /^BenchmarkStreamsConcurrent(-[0-9]+)?$/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$out")"
    if [ -z "$ser_ns" ] || [ -z "$conc_ns" ]; then
        echo "bench gate: stream throughput benchmarks did not run" >&2
        exit 1
    fi
    stream_factor=1.1
    if [ "$cores" -ge 4 ]; then
        stream_factor=1.5
    fi
    if awk -v c="$conc_ns" -v s="$ser_ns" -v f="$stream_factor" -v tol="$tol" \
        'BEGIN { exit !(c * f > s * (1 + tol / 100)) }'; then
        echo "bench gate: concurrent streams do not beat serial: $conc_ns ns/op vs $ser_ns (want >=${stream_factor}x with ${tol}% slack on $cores core(s))" >&2
        exit 1
    fi
    echo "bench gate OK: concurrent streams $conc_ns ns/op are $(awk -v c="$conc_ns" -v s="$ser_ns" 'BEGIN { printf "%.2f", s / c }')x serial $ser_ns on $cores core(s)"

    # Wire-coalescing gate: bursts of small frames over real loopback
    # must average >=2 frames per writev — the batching writer's floor.
    fpw="$(awk '$1 ~ /^BenchmarkFrameBatching(-[0-9]+)?$/ { for (i = 2; i <= NF; i++) if ($(i) == "frames/writev") print $(i-1) }' "$out")"
    if [ -z "$fpw" ]; then
        echo "bench gate: BenchmarkFrameBatching did not report frames/writev" >&2
        exit 1
    fi
    if awk -v f="$fpw" 'BEGIN { exit !(f < 2) }'; then
        echo "bench gate: frame coalescing below floor: $fpw frames/writev (want >=2)" >&2
        exit 1
    fi
    echo "bench gate OK: wire batching at $fpw frames/writev"
fi
