#!/usr/bin/env sh
# Hot-path and figure benchmarks with memory accounting.
#
#   scripts/bench.sh            # run benchmarks, print results, write
#                               # BENCH_reduce.json and BENCH_config.json
#                               # (ns/op, B/op, allocs/op per benchmark)
#   scripts/bench.sh --gate     # additionally fail if either warm Reduce
#                               # benchmark (plain or with observability)
#                               # allocates (>0 allocs/op), if the
#                               # observability-enabled run is more than
#                               # KYLIX_BENCH_TOLERANCE percent (default
#                               # 10) slower than the number recorded in
#                               # BENCH_reduce.json, if the configuration
#                               # pass (BenchmarkConfigure8x4x2) is no
#                               # longer >=1.5x faster (tolerance-widened)
#                               # than the archived pre-rework baseline
#                               # in scripts/bench_config_baseline.txt,
#                               # or if a warm
#                               # unchanged-sets Reconfigure costs more
#                               # than 10(1+tol/100)% of the full fused
#                               # ConfigureReduce on the same topology
#
# BENCH_reduce.json is the checked-in record of the hot-path numbers;
# regenerate it when the hot path changes and commit both runs'
# numbers alongside (see EXPERIMENTS.md).
set -eu

cd "$(dirname "$0")/.."

gate=0
if [ "${1:-}" = "--gate" ]; then
    gate=1
fi

# Remember the previously recorded observability-enabled hot-path time
# before this run overwrites BENCH_reduce.json; the gate compares
# against it. Absent (first recording) the regression check is skipped.
prev_obs_ns=""
if [ -f BENCH_reduce.json ]; then
    prev_obs_ns="$(sed -n 's/.*"BenchmarkReduceWarmObs": {"ns_per_op": \([0-9.]*\).*/\1/p' BENCH_reduce.json | tail -1)"
fi

out="$(mktemp)"
cfgout="$(mktemp)"
trap 'rm -f "$out" "$cfgout"' EXIT

echo "== hot-path benchmarks (internal/bench, internal/core, internal/sparse)"
go test ./internal/bench/ -run '^$' -bench 'BenchmarkReduceWarmQuick|BenchmarkReduceWarmObs' -benchtime 2s -benchmem | tee "$out"
go test ./internal/core/ -run '^$' -bench 'BenchmarkReduce|BenchmarkConfigure|BenchmarkTreeAllreduce' -benchtime 1s -benchmem | tee -a "$out"
go test ./internal/sparse/ -run '^$' -bench 'BenchmarkCombineInto|BenchmarkGatherInto|BenchmarkTreeUnion$|BenchmarkUnionWithMaps' -benchtime 1s -benchmem | tee -a "$out"

echo "== configuration benchmarks (configure / reconfigure / index codec)"
go test ./internal/core/ -run '^$' -bench 'BenchmarkConfigure8x4x2|BenchmarkConfigureReduce16|BenchmarkConfigureReduce8x4x2|BenchmarkReconfigureWarm' -benchtime 2s -benchmem | tee "$cfgout"
go test ./internal/sparse/ -run '^$' -bench 'BenchmarkKeysCodec' -benchtime 1s -benchmem | tee -a "$cfgout"

echo "== figure benchmarks (quick scale, 1 iteration each)"
go test . -run '^$' -bench 'BenchmarkFigure' -benchtime 1x -benchmem | tee -a "$out"

# parse turns `go test -bench` output into the body of a JSON object,
# one entry per benchmark.
parse() {
    awk '
    BEGIN { first = 1 }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        ns = ""; bop = ""; aop = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns  = $(i-1)
            if ($(i) == "B/op")      bop = $(i-1)
            if ($(i) == "allocs/op") aop = $(i-1)
        }
        if (ns == "") next
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns
        if (bop != "") printf ", \"bytes_per_op\": %s", bop
        if (aop != "") printf ", \"allocs_per_op\": %s", aop
        printf "}"
    }' "$1"
}

# The JSON records both runs: "before" is the archived pre-optimisation
# output (scripts/bench_baseline.txt, captured on the same machine before
# the hot-path rework), "after" is this run.
json="BENCH_reduce.json"
baseline="scripts/bench_baseline.txt"
{
    echo "{"
    if [ -f "$baseline" ]; then
        printf '  "before": {\n'
        parse "$baseline"
        printf '\n  },\n'
    fi
    printf '  "after": {\n'
    parse "$out"
    printf '\n  }\n}\n'
} > "$json"
echo "== wrote $json"

# BENCH_config.json is the same record for the configuration pass:
# "before" is the archived pre-rework output (raw 8-byte wire format,
# eager scratch, tree-union + per-piece map scans), "after" is this run.
cfgjson="BENCH_config.json"
cfgbaseline="scripts/bench_config_baseline.txt"
{
    echo "{"
    if [ -f "$cfgbaseline" ]; then
        printf '  "before": {\n'
        parse "$cfgbaseline"
        printf '\n  },\n'
    fi
    printf '  "after": {\n'
    parse "$cfgout"
    printf '\n  }\n}\n'
} > "$cfgjson"
echo "== wrote $cfgjson"

if [ "$gate" = 1 ]; then
    for b in BenchmarkReduceWarmQuick BenchmarkReduceWarmObs; do
        allocs="$(awk -v b="$b" '$1 ~ "^"b { for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") print $(i-1) }' "$out")"
        if [ -z "$allocs" ]; then
            echo "bench gate: $b did not report allocs/op" >&2
            exit 1
        fi
        if [ "$allocs" != "0" ]; then
            echo "bench gate: $b allocates ($allocs allocs/op, want 0)" >&2
            exit 1
        fi
    done
    obs_ns="$(awk '/^BenchmarkReduceWarmObs/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$out")"
    tol="${KYLIX_BENCH_TOLERANCE:-10}"
    if [ -n "$prev_obs_ns" ] && [ -n "$obs_ns" ]; then
        if awk -v cur="$obs_ns" -v prev="$prev_obs_ns" -v tol="$tol" \
            'BEGIN { exit !(cur > prev * (1 + tol / 100)) }'; then
            echo "bench gate: observed warm Reduce regressed: $obs_ns ns/op vs recorded $prev_obs_ns (+>${tol}%)" >&2
            exit 1
        fi
        echo "bench gate OK: warm Reduce (plain and observed) allocation-free; observed $obs_ns ns/op within ${tol}% of recorded $prev_obs_ns"
    else
        echo "bench gate OK: warm Reduce (plain and observed) allocation-free (no recorded WarmObs baseline to compare)"
    fi

    # Configuration-pass gate: the rework's contract is a >=1.5x
    # Configure8x4x2 speedup over the archived pre-rework baseline.
    # Anchoring to the fixed baseline (not the previous run's number)
    # keeps the gate stable on a 1-core box with ~10% run-to-run noise —
    # a self-referential gate ratchets on a lucky fast run and then
    # flakes on the next ordinary one.
    cfg_ns="$(awk '/^BenchmarkConfigure8x4x2/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$cfgout")"
    if [ -z "$cfg_ns" ]; then
        echo "bench gate: BenchmarkConfigure8x4x2 did not run" >&2
        exit 1
    fi
    base_cfg_ns=""
    if [ -f "$cfgbaseline" ]; then
        base_cfg_ns="$(awk '/^BenchmarkConfigure8x4x2/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$cfgbaseline")"
    fi
    if [ -n "$base_cfg_ns" ]; then
        if awk -v cur="$cfg_ns" -v base="$base_cfg_ns" -v tol="$tol" \
            'BEGIN { exit !(cur * 1.5 > base * (1 + tol / 100)) }'; then
            echo "bench gate: Configure8x4x2 speedup eroded: $cfg_ns ns/op vs pre-rework $base_cfg_ns (<1.5x with ${tol}% slack)" >&2
            exit 1
        fi
        echo "bench gate OK: Configure8x4x2 $cfg_ns ns/op is $(awk -v c="$cfg_ns" -v b="$base_cfg_ns" 'BEGIN { printf "%.2f", b / c }')x faster than pre-rework $base_cfg_ns"
    else
        echo "bench gate OK: Configure8x4x2 $cfg_ns ns/op (no archived baseline to compare)"
    fi

    # Incremental-reconfigure gate: a warm unchanged-sets Reconfigure
    # must stay a small fraction (<=10%, tolerance-widened) of the full
    # fused ConfigureReduce on the same 64-machine topology.
    rec_ns="$(awk '/^BenchmarkReconfigureWarm/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$cfgout")"
    full_ns="$(awk '/^BenchmarkConfigureReduce8x4x2/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i-1) }' "$cfgout")"
    if [ -z "$rec_ns" ] || [ -z "$full_ns" ]; then
        echo "bench gate: reconfigure benchmarks did not run" >&2
        exit 1
    fi
    if awk -v rec="$rec_ns" -v full="$full_ns" -v tol="$tol" \
        'BEGIN { exit !(rec > full * 0.10 * (1 + tol / 100)) }'; then
        echo "bench gate: warm Reconfigure too slow: $rec_ns ns/op vs full ConfigureReduce $full_ns (>10%+${tol}% slack)" >&2
        exit 1
    fi
    echo "bench gate OK: warm Reconfigure $rec_ns ns/op is $(awk -v r="$rec_ns" -v f="$full_ns" 'BEGIN { printf "%.1f", 100 * r / f }')% of full ConfigureReduce $full_ns"
fi
