#!/usr/bin/env sh
# Hot-path and figure benchmarks with memory accounting.
#
#   scripts/bench.sh            # run benchmarks, print results, write
#                               # BENCH_reduce.json (ns/op, B/op,
#                               # allocs/op per benchmark)
#   scripts/bench.sh --gate     # additionally fail if the warm Reduce
#                               # benchmark allocates (>0 allocs/op):
#                               # the zero-alloc hot-path regression gate
#
# BENCH_reduce.json is the checked-in record of the hot-path numbers;
# regenerate it when the hot path changes and commit both runs'
# numbers alongside (see EXPERIMENTS.md).
set -eu

cd "$(dirname "$0")/.."

gate=0
if [ "${1:-}" = "--gate" ]; then
    gate=1
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

echo "== hot-path benchmarks (internal/bench, internal/core, internal/sparse)"
go test ./internal/bench/ -run '^$' -bench 'BenchmarkReduceWarmQuick' -benchtime 2s -benchmem | tee "$out"
go test ./internal/core/ -run '^$' -bench 'BenchmarkReduce|BenchmarkConfigure|BenchmarkTreeAllreduce' -benchtime 1s -benchmem | tee -a "$out"
go test ./internal/sparse/ -run '^$' -bench 'BenchmarkCombineInto|BenchmarkGatherInto|BenchmarkTreeUnion$|BenchmarkUnionWithMaps' -benchtime 1s -benchmem | tee -a "$out"

echo "== figure benchmarks (quick scale, 1 iteration each)"
go test . -run '^$' -bench 'BenchmarkFigure' -benchtime 1x -benchmem | tee -a "$out"

# parse turns `go test -bench` output into the body of a JSON object,
# one entry per benchmark.
parse() {
    awk '
    BEGIN { first = 1 }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        ns = ""; bop = ""; aop = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns  = $(i-1)
            if ($(i) == "B/op")      bop = $(i-1)
            if ($(i) == "allocs/op") aop = $(i-1)
        }
        if (ns == "") next
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns
        if (bop != "") printf ", \"bytes_per_op\": %s", bop
        if (aop != "") printf ", \"allocs_per_op\": %s", aop
        printf "}"
    }' "$1"
}

# The JSON records both runs: "before" is the archived pre-optimisation
# output (scripts/bench_baseline.txt, captured on the same machine before
# the hot-path rework), "after" is this run.
json="BENCH_reduce.json"
baseline="scripts/bench_baseline.txt"
{
    echo "{"
    if [ -f "$baseline" ]; then
        printf '  "before": {\n'
        parse "$baseline"
        printf '\n  },\n'
    fi
    printf '  "after": {\n'
    parse "$out"
    printf '\n  }\n}\n'
} > "$json"
echo "== wrote $json"

if [ "$gate" = 1 ]; then
    allocs="$(awk '/^BenchmarkReduceWarmQuick/ { for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") print $(i-1) }' "$out")"
    if [ -z "$allocs" ]; then
        echo "bench gate: BenchmarkReduceWarmQuick did not report allocs/op" >&2
        exit 1
    fi
    if [ "$allocs" != "0" ]; then
        echo "bench gate: warm Reduce allocates ($allocs allocs/op, want 0)" >&2
        exit 1
    fi
    echo "bench gate OK: warm Reduce is allocation-free"
fi
